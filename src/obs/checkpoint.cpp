#include "obs/checkpoint.hpp"

#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "core/message.hpp"
#include "router/link.hpp"

namespace tpnet::obs {

namespace {

constexpr char checkpointMagic[4] = {'T', 'P', 'C', 'K'};
constexpr std::size_t checkpointHeaderSize = 40;

void
putU16(std::uint8_t *p, std::uint16_t v)
{
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
}

void
putU64(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint16_t
getU16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

/** Parse header bytes into @p info; empty string on success. */
std::string
parseCheckpointHeader(const std::uint8_t *hdr, CheckpointFileInfo *info)
{
    if (std::memcmp(hdr, checkpointMagic, 4) != 0)
        return "not a tpnet checkpoint (bad magic)";
    info->version = getU16(hdr + 4);
    info->flags = getU16(hdr + 6);
    info->payloadSize = getU64(hdr + 8);
    info->payloadDigest = getU64(hdr + 16);
    info->configDigest = getU64(hdr + 24);
    if (info->version != checkpointFormatVersion) {
        std::ostringstream os;
        os << "unsupported checkpoint version " << info->version
           << " (reader supports " << checkpointFormatVersion << ")";
        return os.str();
    }
    return {};
}

} // namespace

void
CkWriter::u8(std::uint8_t &v)
{
    payload_.push_back(v);
}

void
CkWriter::u16(std::uint16_t &v)
{
    for (int i = 0; i < 2; ++i)
        payload_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
CkWriter::u32(std::uint32_t &v)
{
    for (int i = 0; i < 4; ++i)
        payload_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
CkWriter::u64(std::uint64_t &v)
{
    for (int i = 0; i < 8; ++i)
        payload_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
CkWriter::i32(std::int32_t &v)
{
    auto u = static_cast<std::uint32_t>(v);
    u32(u);
}

void
CkWriter::i64(std::int64_t &v)
{
    auto u = static_cast<std::uint64_t>(v);
    u64(u);
}

void
CkWriter::f64(double &v)
{
    // Bit-pattern transport: restore reproduces the exact double, so
    // folded statistics stay bit-identical across a round trip.
    std::uint64_t u;
    static_assert(sizeof(u) == sizeof(v));
    std::memcpy(&u, &v, sizeof(u));
    u64(u);
}

void
CkWriter::b(bool &v)
{
    std::uint8_t u = v ? 1 : 0;
    u8(u);
}

void
CkWriter::str(std::string &v)
{
    auto n = static_cast<std::uint64_t>(v.size());
    u64(n);
    payload_.insert(payload_.end(), v.begin(), v.end());
}

std::uint64_t
CkWriter::payloadDigest() const
{
    return fnv1a64(payload_.data(), payload_.size());
}

void
CkWriter::writeTo(std::ostream &os, std::uint64_t config_digest) const
{
    std::uint8_t hdr[checkpointHeaderSize] = {};
    std::memcpy(hdr, checkpointMagic, 4);
    putU16(hdr + 4, checkpointFormatVersion);
    putU16(hdr + 6, 0);
    putU64(hdr + 8, payload_.size());
    putU64(hdr + 16, payloadDigest());
    putU64(hdr + 24, config_digest);
    putU64(hdr + 32, 0);
    os.write(reinterpret_cast<const char *>(hdr), sizeof(hdr));
    os.write(reinterpret_cast<const char *>(payload_.data()),
             static_cast<std::streamsize>(payload_.size()));
}

CkReader::CkReader(std::istream &is)
{
    std::uint8_t hdr[checkpointHeaderSize];
    is.read(reinterpret_cast<char *>(hdr), sizeof(hdr));
    if (is.gcount() != static_cast<std::streamsize>(sizeof(hdr))) {
        error_ = "truncated checkpoint header";
        return;
    }
    error_ = parseCheckpointHeader(hdr, &info_);
    if (!error_.empty())
        return;
    payload_.resize(info_.payloadSize);
    is.read(reinterpret_cast<char *>(payload_.data()),
            static_cast<std::streamsize>(payload_.size()));
    const auto got = is.gcount();
    if (got != static_cast<std::streamsize>(payload_.size())) {
        std::ostringstream os;
        os << "truncated checkpoint payload (" << got << " of "
           << payload_.size() << " bytes)";
        error_ = os.str();
        return;
    }
    char extra;
    if (is.read(&extra, 1), is.gcount() != 0) {
        error_ = "trailing bytes after checkpoint payload";
        return;
    }
    const std::uint64_t digest = fnv1a64(payload_.data(), payload_.size());
    if (digest != info_.payloadDigest) {
        std::ostringstream os;
        os << "checkpoint payload digest mismatch (file " << std::hex
           << info_.payloadDigest << ", computed " << digest << ")";
        error_ = os.str();
    }
}

const std::uint8_t *
CkReader::take(std::size_t n)
{
    if (!ok())
        return nullptr;
    if (pos_ + n > payload_.size()) {
        std::ostringstream os;
        os << "checkpoint payload underrun at byte " << pos_
           << " (need " << n << " of " << payload_.size() << ")";
        error_ = os.str();
        return nullptr;
    }
    const std::uint8_t *p = payload_.data() + pos_;
    pos_ += n;
    return p;
}

void
CkReader::u8(std::uint8_t &v)
{
    const std::uint8_t *p = take(1);
    v = p ? p[0] : 0;
}

void
CkReader::u16(std::uint16_t &v)
{
    const std::uint8_t *p = take(2);
    v = p ? getU16(p) : 0;
}

void
CkReader::u32(std::uint32_t &v)
{
    const std::uint8_t *p = take(4);
    v = 0;
    if (p)
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
}

void
CkReader::u64(std::uint64_t &v)
{
    const std::uint8_t *p = take(8);
    v = p ? getU64(p) : 0;
}

void
CkReader::i32(std::int32_t &v)
{
    std::uint32_t u = 0;
    u32(u);
    v = static_cast<std::int32_t>(u);
}

void
CkReader::i64(std::int64_t &v)
{
    std::uint64_t u = 0;
    u64(u);
    v = static_cast<std::int64_t>(u);
}

void
CkReader::f64(double &v)
{
    std::uint64_t u = 0;
    u64(u);
    std::memcpy(&v, &u, sizeof(v));
}

void
CkReader::b(bool &v)
{
    std::uint8_t u = 0;
    u8(u);
    v = u != 0;
}

void
CkReader::str(std::string &v)
{
    std::uint64_t n = 0;
    u64(n);
    v.clear();
    const std::uint8_t *p = take(static_cast<std::size_t>(n));
    if (p)
        v.assign(reinterpret_cast<const char *>(p),
                 static_cast<std::size_t>(n));
}

void
CkReader::finish()
{
    if (!ok())
        return;
    if (pos_ != payload_.size()) {
        std::ostringstream os;
        os << "checkpoint payload overrun: " << payload_.size() - pos_
           << " unread byte(s)";
        error_ = os.str();
    }
}

void
CkReader::fail(const std::string &why)
{
    if (error_.empty())
        error_ = why;
}

bool
readCheckpointInfo(std::istream &is, CheckpointFileInfo *info,
                   std::string *error)
{
    std::uint8_t hdr[checkpointHeaderSize];
    is.read(reinterpret_cast<char *>(hdr), sizeof(hdr));
    if (is.gcount() != static_cast<std::streamsize>(sizeof(hdr))) {
        *error = "truncated checkpoint header";
        return false;
    }
    *error = parseCheckpointHeader(hdr, info);
    return error->empty();
}

void
DigestTee::fold(const TraceEvent &ev)
{
    std::uint8_t rec[traceRecordSize];
    encodeTraceEvent(ev, rec);
    digest_ = fnv1a64(rec, sizeof(rec), digest_);
    ++records_;
}

void
DigestTee::reset(Cycle from)
{
    digest_ = 14695981039346656037ull;
    records_ = 0;
    tailFrom_ = from;
}

// The hook-to-record mapping below mirrors TraceRecorder exactly, so
// the tee's digest equals the digest of the trace a recorder would
// have produced for the same event window.

void
DigestTee::flitCrossed(Cycle now, const Link &link, int vc,
                       const Flit &flit, bool control_lane)
{
    TraceEvent ev;
    ev.kind = TraceEventKind::FlitCrossed;
    ev.flitType = static_cast<std::uint8_t>(flit.type);
    ev.vc = static_cast<std::int8_t>(vc);
    ev.link = static_cast<std::uint32_t>(link.id);
    ev.node = static_cast<std::uint32_t>(link.src);
    ev.cycle = now;
    ev.msg = flit.msg;
    ev.seq = flit.seq;
    ev.hop = flit.hopIdx;
    ev.epoch = flit.epoch;
    fold(ev);
    if (downstream_)
        downstream_->flitCrossed(now, link, vc, flit, control_lane);
}

void
DigestTee::flitInjected(Cycle now, NodeId node, const Flit &flit)
{
    TraceEvent ev;
    ev.kind = TraceEventKind::FlitInjected;
    ev.flitType = static_cast<std::uint8_t>(flit.type);
    ev.node = static_cast<std::uint32_t>(node);
    ev.cycle = now;
    ev.msg = flit.msg;
    ev.seq = flit.seq;
    ev.hop = flit.hopIdx;
    ev.epoch = flit.epoch;
    fold(ev);
    if (downstream_)
        downstream_->flitInjected(now, node, flit);
}

void
DigestTee::flitDelivered(Cycle now, NodeId node, const Flit &flit)
{
    TraceEvent ev;
    ev.kind = TraceEventKind::FlitDelivered;
    ev.flitType = static_cast<std::uint8_t>(flit.type);
    ev.node = static_cast<std::uint32_t>(node);
    ev.cycle = now;
    ev.msg = flit.msg;
    ev.seq = flit.seq;
    ev.hop = flit.hopIdx;
    ev.epoch = flit.epoch;
    fold(ev);
    if (downstream_)
        downstream_->flitDelivered(now, node, flit);
}

void
DigestTee::vcAllocated(Cycle now, const Link &link, int vc,
                       const Message &msg, int hop_idx)
{
    TraceEvent ev;
    ev.kind = TraceEventKind::VcAllocated;
    ev.vc = static_cast<std::int8_t>(vc);
    ev.link = static_cast<std::uint32_t>(link.id);
    ev.node = static_cast<std::uint32_t>(link.dst);
    ev.cycle = now;
    ev.msg = msg.id;
    ev.hop = hop_idx;
    ev.epoch = msg.epoch;
    fold(ev);
    if (downstream_)
        downstream_->vcAllocated(now, link, vc, msg, hop_idx);
}

void
DigestTee::vcReleased(Cycle now, const Link &link, int vc,
                      const Message &msg, int hop_idx)
{
    TraceEvent ev;
    ev.kind = TraceEventKind::VcReleased;
    ev.vc = static_cast<std::int8_t>(vc);
    ev.link = static_cast<std::uint32_t>(link.id);
    ev.node = static_cast<std::uint32_t>(link.dst);
    ev.cycle = now;
    ev.msg = msg.id;
    ev.hop = hop_idx;
    ev.epoch = msg.epoch;
    fold(ev);
    if (downstream_)
        downstream_->vcReleased(now, link, vc, msg, hop_idx);
}

void
DigestTee::probeEvent(Cycle now, const Message &msg, ProbeEvent event)
{
    TraceEvent ev;
    ev.kind = TraceEventKind::Probe;
    ev.detail = static_cast<std::uint8_t>(event);
    ev.node = static_cast<std::uint32_t>(msg.hdr.cur);
    ev.cycle = now;
    ev.msg = msg.id;
    ev.hop = static_cast<std::int32_t>(msg.path.size()) - 1;
    ev.epoch = msg.epoch;
    fold(ev);
    if (downstream_)
        downstream_->probeEvent(now, msg, event);
}

void
DigestTee::messageCreated(Cycle now, const Message &msg)
{
    TraceEvent ev;
    ev.kind = TraceEventKind::MsgCreated;
    ev.node = static_cast<std::uint32_t>(msg.src);
    ev.aux = static_cast<std::uint32_t>(msg.dst);
    ev.cycle = now;
    ev.msg = msg.id;
    ev.seq = msg.length;
    fold(ev);
    if (downstream_)
        downstream_->messageCreated(now, msg);
}

void
DigestTee::messageTerminal(Cycle now, const Message &msg,
                           MsgOutcome outcome)
{
    TraceEvent ev;
    ev.kind = TraceEventKind::MsgTerminal;
    ev.detail = static_cast<std::uint8_t>(outcome);
    ev.node = static_cast<std::uint32_t>(msg.src);
    ev.aux = static_cast<std::uint32_t>(msg.dst);
    ev.cycle = now;
    ev.msg = msg.id;
    fold(ev);
    if (downstream_)
        downstream_->messageTerminal(now, msg, outcome);
}

} // namespace tpnet::obs
