/**
 * @file
 * TraceRecorder — a TraceSink capturing every simulation event into
 * trace_format records, plus the seeded record-run driver behind the
 * `tpnet_trace record` CLI and the golden-trace regression suite.
 *
 * recordRun() can execute the same scenario on several worker threads
 * at once (`--jobs N`), each worker with its own Network + recorder,
 * and verifies that all copies produced bit-identical digests — the
 * trace-level analogue of the sweep engine's jobs-invariance guarantee.
 */

#ifndef TPNET_OBS_RECORDER_HPP
#define TPNET_OBS_RECORDER_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace_format.hpp"
#include "sim/config.hpp"
#include "sim/trace.hpp"

namespace tpnet::obs {

/** Records every trace hook into an in-memory event sequence. */
class TraceRecorder : public TraceSink
{
  public:
    void flitCrossed(Cycle now, const Link &link, int vc, const Flit &flit,
                     bool control_lane) override;
    void flitInjected(Cycle now, NodeId node, const Flit &flit) override;
    void flitDelivered(Cycle now, NodeId node, const Flit &flit) override;
    void vcAllocated(Cycle now, const Link &link, int vc,
                     const Message &msg, int hop_idx) override;
    void vcReleased(Cycle now, const Link &link, int vc,
                    const Message &msg, int hop_idx) override;
    void probeEvent(Cycle now, const Message &msg,
                    ProbeEvent event) override;
    void messageCreated(Cycle now, const Message &msg) override;
    void messageTerminal(Cycle now, const Message &msg,
                         MsgOutcome outcome) override;

    const std::vector<TraceEvent> &events() const { return events_; }
    std::size_t size() const { return events_.size(); }

    /**
     * FNV-1a digest over the serialized record bytes, maintained as
     * events arrive — identical to the digest of the written file.
     */
    std::uint64_t digest() const { return digest_; }

    /** Write the binary trace (header seeded with @p seed). */
    void writeBinary(std::ostream &os, std::uint64_t seed) const;

    /** Write one JSON object per event (JSONL text mode). */
    void writeJsonl(std::ostream &os) const;

    void clear();

  private:
    void append(const TraceEvent &ev);

    std::vector<TraceEvent> events_;
    std::uint64_t digest_ = 14695981039346656037ull;
};

/** One recordable scenario: a configuration plus a cycle budget. */
struct RecordSpec
{
    SimConfig cfg;
    /** Injection window; after it, the run drains to quiescence. */
    Cycle cycles = 300;
    /** Extra cycles allowed for the drain before giving up. */
    Cycle drain = 20000;
    /** Fail this node at cycle killAt (dynamic-kill scenarios). */
    NodeId killNode = invalidNode;
    Cycle killAt = 0;
};

/**
 * The canonical golden scenarios, in fixed order: fault-free WR (DP),
 * SR with K=3, TP with a static link fault, and TP with a dynamic
 * node kill mid-run. @p seed perturbs all of them identically.
 */
std::vector<RecordSpec> goldenSpecs(std::uint64_t seed);

/** Name of goldenSpecs()[i] ("wr-faultfree", "sr-k3", ...). */
const char *goldenSpecName(std::size_t i);

/**
 * Run @p spec with a recorder attached: inject Injector traffic for
 * spec.cycles, then drain until quiescent (bounded by spec.drain).
 * With @p jobs > 1 the identical scenario runs on that many workers
 * concurrently and the digests are asserted equal before returning
 * worker 0's recording (dies loudly on a mismatch).
 */
TraceRecorder recordRun(const RecordSpec &spec, std::size_t jobs = 1);

} // namespace tpnet::obs

#endif // TPNET_OBS_RECORDER_HPP
