/**
 * @file
 * MetricsRegistry — periodic per-router/per-VC sampling of a live
 * Network into VcMetrics windows.
 *
 * The registry is a passive observer: it reads link/router state and
 * crossing counters but never touches the RNG or any simulation state,
 * so attaching it cannot perturb simulated latency or throughput (the
 * perf gate in scripts/check_bench.py relies on that). Sampling every
 * SimConfig::metricsPeriod cycles keeps the cost amortized to a few
 * loads per link per period.
 */

#ifndef TPNET_OBS_METRICS_REGISTRY_HPP
#define TPNET_OBS_METRICS_REGISTRY_HPP

#include <cstdint>
#include <vector>

#include "metrics/collector.hpp"
#include "sim/types.hpp"

namespace tpnet {
class Network;
} // namespace tpnet

namespace tpnet::obs {

/** Samples a Network's channel structures into VcMetrics windows. */
class MetricsRegistry
{
  public:
    /** @param period cycles between samples (<= 0 disables sampling). */
    MetricsRegistry(const Network &net, int period);

    /**
     * Call once per cycle; takes a sample when the period elapses.
     * Utilization samples are crossing-count deltas since the previous
     * sample divided by the period.
     */
    void tick(const Network &net);

    /** Take one sample now (also used by tick). */
    void sample(const Network &net);

    /**
     * Replay @p skipped ticks over a frozen network in one call
     * (event-engine cycle skipping). Samples whose period elapsed
     * inside the span are taken against the unchanged network state,
     * so the resulting windows are bit-identical to per-cycle ticking.
     */
    void skipIdle(const Network &net, Cycle skipped);

    int period() const { return period_; }

    const VcMetrics &summary() const { return metrics_; }

  private:
    int period_;
    Cycle sinceSample_ = 0;
    VcMetrics metrics_;
    std::vector<std::uint64_t> lastData_;  ///< dataCrossings per link
    std::vector<std::uint64_t> lastCtrl_;  ///< ctrlCrossings per link
};

} // namespace tpnet::obs

#endif // TPNET_OBS_METRICS_REGISTRY_HPP
