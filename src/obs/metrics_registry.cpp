#include "obs/metrics_registry.hpp"

#include "core/network.hpp"

namespace tpnet::obs {

MetricsRegistry::MetricsRegistry(const Network &net, int period)
    : period_(period)
{
    const int links = net.topo().links();
    lastData_.assign(static_cast<std::size_t>(links), 0);
    lastCtrl_.assign(static_cast<std::size_t>(links), 0);
    metrics_.perVc.resize(
        static_cast<std::size_t>(net.config().vcsPerLink()));
}

void
MetricsRegistry::tick(const Network &net)
{
    if (period_ <= 0)
        return;
    if (++sinceSample_ >= static_cast<Cycle>(period_)) {
        sinceSample_ = 0;
        sample(net);
    }
}

void
MetricsRegistry::skipIdle(const Network &net, Cycle skipped)
{
    if (period_ <= 0 || skipped == 0)
        return;
    const auto period = static_cast<Cycle>(period_);
    Cycle fires = (sinceSample_ + skipped) / period;
    sinceSample_ = (sinceSample_ + skipped) % period;
    // The first sample of the span still captures crossing deltas
    // pending from before it; the rest see zero deltas. The state
    // snapshots are identical every time, so each fire must be taken.
    for (; fires > 0; --fires)
        sample(net);
}

void
MetricsRegistry::sample(const Network &net)
{
    const SimConfig &cfg = net.config();
    const int nlinks = net.topo().links();
    const double capacity =
        static_cast<double>(cfg.vcsPerLink() * cfg.bufDepth);
    const double period = period_ > 0 ? static_cast<double>(period_) : 1.0;

    for (LinkId id = 0; id < nlinks; ++id) {
        const Link &lk = net.link(id);
        if (lk.absent)
            continue;

        int busy = 0;
        std::size_t resident = 0;
        for (std::size_t v = 0; v < lk.vcs.size(); ++v) {
            const VcState &vc = lk.vcs[v];
            if (!vc.free())
                ++busy;
            resident += vc.data.size();
            if (v < metrics_.perVc.size()) {
                metrics_.perVc[v].add(
                    static_cast<double>(vc.data.size()) /
                    static_cast<double>(cfg.bufDepth));
            }
        }
        const double fill =
            capacity > 0 ? static_cast<double>(resident) / capacity : 0.0;
        metrics_.occupancy.add(fill);
        metrics_.occupancyHist.add(fill);
        metrics_.muxDegree.add(static_cast<double>(busy));

        const auto i = static_cast<std::size_t>(id);
        metrics_.dataUtil.add(
            static_cast<double>(lk.dataCrossings - lastData_[i]) / period);
        metrics_.ctrlUtil.add(
            static_cast<double>(lk.ctrlCrossings - lastCtrl_[i]) / period);
        lastData_[i] = lk.dataCrossings;
        lastCtrl_[i] = lk.ctrlCrossings;
    }

    for (NodeId n = 0; n < cfg.nodes(); ++n) {
        const Router &rt = net.router(n);
        if (rt.faulty)
            continue;
        metrics_.rcuDepth.add(static_cast<double>(rt.rcuQueue.size()));
    }

    ++metrics_.samples;
}

} // namespace tpnet::obs
