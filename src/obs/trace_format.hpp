/**
 * @file
 * Versioned binary trace format and streaming reader/writer.
 *
 * A trace file is a 32-byte header followed by fixed-size little-endian
 * event records (DESIGN.md §6e):
 *
 *   header:  magic "TPTR" | u16 version | u16 flags | u32 record_size
 *            | u32 reserved | u64 seed | u64 reserved
 *   record:  u8 kind | u8 flit_type | u8 detail | i8 vc
 *            | u32 link | u32 node | u64 cycle | u64 msg
 *            | i32 seq | i32 hop | i32 epoch | u32 aux     (44 bytes)
 *
 * The 64-bit trace digest is FNV-1a over the serialized record bytes
 * (the header is excluded, so the digest depends only on the event
 * sequence, not on how the run was labelled). Serialization is explicit
 * byte-at-a-time little-endian, so files and digests are identical
 * across platforms and standard libraries — that is what lets the
 * golden-trace suite check in digests.
 */

#ifndef TPNET_OBS_TRACE_FORMAT_HPP
#define TPNET_OBS_TRACE_FORMAT_HPP

#include <cstdint>
#include <iosfwd>
#include <string>

#include "router/flit.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace tpnet::obs {

/** What a trace record describes. */
enum class TraceEventKind : std::uint8_t {
    FlitCrossed = 0,   ///< flit crossed a link (vc < 0: control lane)
    FlitInjected = 1,  ///< flit entered the network at its source PE
    FlitDelivered = 2, ///< flit ejected at the destination PE
    VcAllocated = 3,   ///< probe reserved a VC trio (detail unused)
    VcReleased = 4,    ///< a path hop released its VC trio
    Probe = 5,         ///< probe event; detail is a ProbeEvent
    MsgCreated = 6,    ///< message accepted; node=src, aux=dst, seq=length
    MsgTerminal = 7,   ///< message retired; detail is a MsgOutcome
};

/** Short name for a record kind (dump mode, tests). */
const char *traceEventKindName(TraceEventKind k);

/** One fixed-size trace record (all kinds share the same layout). */
struct TraceEvent
{
    TraceEventKind kind = TraceEventKind::FlitCrossed;
    std::uint8_t flitType = 0xff; ///< FlitType, or 0xff when not a flit
    std::uint8_t detail = 0xff;   ///< ProbeEvent / MsgOutcome, else 0xff
    std::int8_t vc = -1;          ///< VC index; -1 on the control lane
    std::uint32_t link = 0xffffffffu; ///< LinkId, or ~0 when not on a link
    std::uint32_t node = 0xffffffffu; ///< NodeId, or ~0
    Cycle cycle = 0;
    std::int64_t msg = invalidMsg;
    std::int32_t seq = 0;
    std::int32_t hop = 0;
    std::int32_t epoch = 0;
    std::uint32_t aux = 0;

    /** Reconstruct the flit this record described (flit-kind records). */
    Flit toFlit() const;
};

/** Serialized record size in bytes. */
constexpr std::uint32_t traceRecordSize = 44;

/** Current format version. */
constexpr std::uint16_t traceFormatVersion = 1;

/** FNV-1a 64 over @p n bytes, continuing from @p h. */
std::uint64_t fnv1a64(const void *data, std::size_t n,
                      std::uint64_t h = 14695981039346656037ull);

/** Serialize @p ev into @p out (traceRecordSize bytes, little-endian). */
void encodeTraceEvent(const TraceEvent &ev, std::uint8_t *out);

/** Inverse of encodeTraceEvent. */
TraceEvent decodeTraceEvent(const std::uint8_t *in);

/** One JSON object (single line, no trailing newline) for JSONL dumps. */
std::string traceEventJson(const TraceEvent &ev);

/** Parsed trace-file header. */
struct TraceFileInfo
{
    std::uint16_t version = traceFormatVersion;
    std::uint16_t flags = 0;
    std::uint32_t recordSize = traceRecordSize;
    std::uint64_t seed = 0;
};

/** Streaming binary trace writer. Writes the header on construction. */
class TraceWriter
{
  public:
    TraceWriter(std::ostream &os, std::uint64_t seed);

    /** Append one record (serialize + fold into the running digest). */
    void write(const TraceEvent &ev);

    std::uint64_t records() const { return records_; }

    /** Running FNV-1a digest of the records written so far. */
    std::uint64_t digest() const { return digest_; }

  private:
    std::ostream &os_;
    std::uint64_t records_ = 0;
    std::uint64_t digest_ = 14695981039346656037ull;
};

/**
 * Streaming binary trace reader. Construction parses and validates the
 * header; next() yields records until clean EOF or a framing error.
 * Errors (bad magic, version/record-size mismatch, truncated record)
 * are reported via ok()/error(), never by aborting — the CLI and the
 * round-trip tests both exercise these paths.
 */
class TraceReader
{
  public:
    explicit TraceReader(std::istream &is);

    bool ok() const { return error_.empty(); }
    const std::string &error() const { return error_; }
    const TraceFileInfo &info() const { return info_; }

    /**
     * Read the next record. @return false at end of input; check ok()
     * to distinguish clean EOF from a truncated/corrupt file.
     */
    bool next(TraceEvent *ev);

    std::uint64_t records() const { return records_; }

    /** Running FNV-1a digest of the records read so far. */
    std::uint64_t digest() const { return digest_; }

  private:
    std::istream &is_;
    TraceFileInfo info_;
    std::string error_;
    std::uint64_t records_ = 0;
    std::uint64_t digest_ = 14695981039346656037ull;
};

} // namespace tpnet::obs

#endif // TPNET_OBS_TRACE_FORMAT_HPP
