#include "obs/replay.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace tpnet::obs {

namespace {

/** Messages whose setup ever retreated, detoured, or re-tried. */
std::unordered_set<MsgId>
irregularMessages(const std::vector<TraceEvent> &events)
{
    std::unordered_set<MsgId> out;
    for (const TraceEvent &ev : events) {
        if (ev.epoch > 0) {
            out.insert(ev.msg);
            continue;
        }
        if (ev.kind == TraceEventKind::Probe) {
            const auto pe = static_cast<ProbeEvent>(ev.detail);
            if (pe == ProbeEvent::Backtracked ||
                pe == ProbeEvent::EnteredDetour ||
                pe == ProbeEvent::Aborted) {
                out.insert(ev.msg);
            }
        } else if (ev.kind == TraceEventKind::FlitCrossed &&
                   static_cast<FlitType>(ev.flitType) == FlitType::AckNeg) {
            out.insert(ev.msg);
        }
    }
    return out;
}

} // namespace

TimeSpaceTrace
replayTimeSpace(const std::vector<TraceEvent> &events, MsgId target)
{
    if (target == invalidMsg) {
        for (const TraceEvent &ev : events) {
            if (ev.kind == TraceEventKind::MsgTerminal &&
                static_cast<MsgOutcome>(ev.detail) == MsgOutcome::Delivered) {
                target = ev.msg;
                break;
            }
        }
    }
    if (target == invalidMsg) {
        for (const TraceEvent &ev : events) {
            if (ev.kind == TraceEventKind::MsgCreated) {
                target = ev.msg;
                break;
            }
        }
    }

    TimeSpaceTrace ts(target);
    for (const TraceEvent &ev : events) {
        switch (ev.kind) {
          case TraceEventKind::FlitCrossed:
            ts.onFlitCrossed(ev.cycle, ev.toFlit(), ev.vc < 0);
            break;
          case TraceEventKind::FlitDelivered:
            ts.onFlitDelivered(ev.cycle, ev.toFlit());
            break;
          case TraceEventKind::Probe:
            ts.onProbeEvent(ev.cycle, ev.msg,
                            static_cast<ProbeEvent>(ev.detail));
            break;
          default:
            break;
        }
    }
    return ts;
}

CheckResult
checkScoutGap(const std::vector<TraceEvent> &events, int scout_k)
{
    CheckResult res;

    // The K-ack bound only holds verbatim for monotone setups: negative
    // acknowledgments roll counters back and retries restart the path,
    // so those messages are exempt (they are checked by checkVcBalance
    // instead).
    const std::unordered_set<MsgId> exempt = irregularMessages(events);

    struct MsgTrack
    {
        std::int32_t frontier = -1;  ///< furthest hop the header crossed
        bool ejected = false;        ///< PathDone opened residual gates
    };
    std::unordered_map<MsgId, MsgTrack> track;

    for (const TraceEvent &ev : events) {
        if (exempt.count(ev.msg))
            continue;
        if (ev.kind == TraceEventKind::Probe) {
            if (static_cast<ProbeEvent>(ev.detail) == ProbeEvent::Ejected)
                track[ev.msg].ejected = true;
            continue;
        }
        if (ev.kind != TraceEventKind::FlitCrossed)
            continue;

        const auto type = static_cast<FlitType>(ev.flitType);
        if (type == FlitType::Header) {
            MsgTrack &t = track[ev.msg];
            t.frontier = std::max(t.frontier, ev.hop);
            continue;
        }
        if (type != FlitType::Data && type != FlitType::Tail)
            continue;

        // A data flit crossing hop h left the gate of channel h-1, which
        // requires K positive acks there: header frontier >= h + K - 1,
        // unless the probe already ejected (destination acknowledgment
        // opens every remaining gate on paths shorter than K).
        const MsgTrack &t = track[ev.msg];
        ++res.checked;
        if (!t.ejected && t.frontier < ev.hop + scout_k - 1) {
            std::ostringstream os;
            os << "scout-gap violation: msg " << ev.msg << " data flit seq "
               << ev.seq << " crossed hop " << ev.hop << " at cycle "
               << ev.cycle << " with header frontier " << t.frontier
               << " < " << (ev.hop + scout_k - 1) << " (K=" << scout_k
               << ")";
            res.ok = false;
            res.error = os.str();
            return res;
        }
    }
    return res;
}

CheckResult
checkVcBalance(const std::vector<TraceEvent> &events, bool require_drained)
{
    CheckResult res;
    struct Key
    {
        std::uint32_t link;
        std::int8_t vc;
        bool operator==(const Key &o) const
        {
            return link == o.link && vc == o.vc;
        }
    };
    struct KeyHash
    {
        std::size_t operator()(const Key &k) const
        {
            return k.link * 31u + static_cast<std::size_t>(k.vc + 1);
        }
    };
    std::unordered_map<Key, MsgId, KeyHash> owner;

    for (const TraceEvent &ev : events) {
        if (ev.kind == TraceEventKind::VcAllocated) {
            ++res.checked;
            const auto [it, fresh] =
                owner.emplace(Key{ev.link, ev.vc}, ev.msg);
            if (!fresh) {
                std::ostringstream os;
                os << "double allocation: link " << ev.link << " vc "
                   << static_cast<int>(ev.vc) << " allocated to msg "
                   << ev.msg << " at cycle " << ev.cycle
                   << " while held by msg " << it->second;
                res.ok = false;
                res.error = os.str();
                return res;
            }
        } else if (ev.kind == TraceEventKind::VcReleased) {
            ++res.checked;
            auto it = owner.find(Key{ev.link, ev.vc});
            if (it == owner.end() || it->second != ev.msg) {
                std::ostringstream os;
                os << "unmatched release: link " << ev.link << " vc "
                   << static_cast<int>(ev.vc) << " released by msg "
                   << ev.msg << " at cycle " << ev.cycle
                   << (it == owner.end() ? " (never allocated)"
                                         : " (held by another message)");
                res.ok = false;
                res.error = os.str();
                return res;
            }
            owner.erase(it);
        }
    }

    if (require_drained && !owner.empty()) {
        std::ostringstream os;
        const auto &[key, msg] = *owner.begin();
        os << owner.size() << " allocation(s) never released; first: link "
           << key.link << " vc " << static_cast<int>(key.vc) << " msg "
           << msg;
        res.ok = false;
        res.error = os.str();
    }
    return res;
}

CheckResult
readAll(TraceReader &reader, std::vector<TraceEvent> *out)
{
    CheckResult res;
    TraceEvent ev;
    while (reader.next(&ev)) {
        out->push_back(ev);
        ++res.checked;
    }
    if (!reader.ok()) {
        res.ok = false;
        res.error = reader.error();
    }
    return res;
}

} // namespace tpnet::obs
