#include "obs/trace_format.hpp"

#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

namespace tpnet::obs {

namespace {

constexpr char traceMagic[4] = {'T', 'P', 'T', 'R'};
constexpr std::size_t traceHeaderSize = 32;

void
putU16(std::uint8_t *p, std::uint16_t v)
{
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
}

void
putU32(std::uint8_t *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void
putU64(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint16_t
getU16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

const char *
traceEventKindName(TraceEventKind k)
{
    switch (k) {
      case TraceEventKind::FlitCrossed:   return "cross";
      case TraceEventKind::FlitInjected:  return "inject";
      case TraceEventKind::FlitDelivered: return "deliver";
      case TraceEventKind::VcAllocated:   return "vc-alloc";
      case TraceEventKind::VcReleased:    return "vc-release";
      case TraceEventKind::Probe:         return "probe";
      case TraceEventKind::MsgCreated:    return "msg-create";
      case TraceEventKind::MsgTerminal:   return "msg-terminal";
    }
    return "?";
}

Flit
TraceEvent::toFlit() const
{
    Flit f;
    f.type = static_cast<FlitType>(flitType);
    f.msg = msg;
    f.seq = seq;
    f.hopIdx = hop;
    f.epoch = epoch;
    f.readyAt = cycle;
    return f;
}

std::uint64_t
fnv1a64(const void *data, std::size_t n, std::uint64_t h)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

void
encodeTraceEvent(const TraceEvent &ev, std::uint8_t *out)
{
    out[0] = static_cast<std::uint8_t>(ev.kind);
    out[1] = ev.flitType;
    out[2] = ev.detail;
    out[3] = static_cast<std::uint8_t>(ev.vc);
    putU32(out + 4, ev.link);
    putU32(out + 8, ev.node);
    putU64(out + 12, ev.cycle);
    putU64(out + 20, static_cast<std::uint64_t>(ev.msg));
    putU32(out + 28, static_cast<std::uint32_t>(ev.seq));
    putU32(out + 32, static_cast<std::uint32_t>(ev.hop));
    putU32(out + 36, static_cast<std::uint32_t>(ev.epoch));
    putU32(out + 40, ev.aux);
}

TraceEvent
decodeTraceEvent(const std::uint8_t *in)
{
    TraceEvent ev;
    ev.kind = static_cast<TraceEventKind>(in[0]);
    ev.flitType = in[1];
    ev.detail = in[2];
    ev.vc = static_cast<std::int8_t>(in[3]);
    ev.link = getU32(in + 4);
    ev.node = getU32(in + 8);
    ev.cycle = getU64(in + 12);
    ev.msg = static_cast<std::int64_t>(getU64(in + 20));
    ev.seq = static_cast<std::int32_t>(getU32(in + 28));
    ev.hop = static_cast<std::int32_t>(getU32(in + 32));
    ev.epoch = static_cast<std::int32_t>(getU32(in + 36));
    ev.aux = getU32(in + 40);
    return ev;
}

std::string
traceEventJson(const TraceEvent &ev)
{
    std::ostringstream os;
    os << "{\"t\":" << ev.cycle
       << ",\"kind\":\"" << traceEventKindName(ev.kind) << '"'
       << ",\"msg\":" << ev.msg;
    switch (ev.kind) {
      case TraceEventKind::FlitCrossed:
        os << ",\"flit\":\""
           << flitTypeName(static_cast<FlitType>(ev.flitType)) << '"'
           << ",\"link\":" << static_cast<std::int32_t>(ev.link)
           << ",\"vc\":" << static_cast<int>(ev.vc)
           << ",\"lane\":\"" << (ev.vc < 0 ? "ctrl" : "data") << '"'
           << ",\"seq\":" << ev.seq << ",\"hop\":" << ev.hop
           << ",\"epoch\":" << ev.epoch;
        break;
      case TraceEventKind::FlitInjected:
      case TraceEventKind::FlitDelivered:
        os << ",\"flit\":\""
           << flitTypeName(static_cast<FlitType>(ev.flitType)) << '"'
           << ",\"node\":" << static_cast<std::int32_t>(ev.node)
           << ",\"seq\":" << ev.seq << ",\"hop\":" << ev.hop;
        break;
      case TraceEventKind::VcAllocated:
      case TraceEventKind::VcReleased:
        os << ",\"link\":" << static_cast<std::int32_t>(ev.link)
           << ",\"vc\":" << static_cast<int>(ev.vc)
           << ",\"hop\":" << ev.hop;
        break;
      case TraceEventKind::Probe:
        os << ",\"event\":\""
           << probeEventName(static_cast<ProbeEvent>(ev.detail)) << '"'
           << ",\"hop\":" << ev.hop;
        break;
      case TraceEventKind::MsgCreated:
        os << ",\"src\":" << static_cast<std::int32_t>(ev.node)
           << ",\"dst\":" << static_cast<std::int32_t>(ev.aux)
           << ",\"length\":" << ev.seq;
        break;
      case TraceEventKind::MsgTerminal:
        os << ",\"outcome\":\""
           << msgOutcomeName(static_cast<MsgOutcome>(ev.detail)) << '"';
        break;
    }
    os << '}';
    return os.str();
}

TraceWriter::TraceWriter(std::ostream &os, std::uint64_t seed)
    : os_(os)
{
    std::uint8_t hdr[traceHeaderSize] = {};
    std::memcpy(hdr, traceMagic, 4);
    putU16(hdr + 4, traceFormatVersion);
    putU16(hdr + 6, 0);
    putU32(hdr + 8, traceRecordSize);
    putU32(hdr + 12, 0);
    putU64(hdr + 16, seed);
    putU64(hdr + 24, 0);
    os_.write(reinterpret_cast<const char *>(hdr), sizeof(hdr));
}

void
TraceWriter::write(const TraceEvent &ev)
{
    std::uint8_t rec[traceRecordSize];
    encodeTraceEvent(ev, rec);
    os_.write(reinterpret_cast<const char *>(rec), sizeof(rec));
    digest_ = fnv1a64(rec, sizeof(rec), digest_);
    ++records_;
}

TraceReader::TraceReader(std::istream &is)
    : is_(is)
{
    std::uint8_t hdr[traceHeaderSize];
    is_.read(reinterpret_cast<char *>(hdr), sizeof(hdr));
    if (is_.gcount() != static_cast<std::streamsize>(sizeof(hdr))) {
        error_ = "truncated trace header";
        return;
    }
    if (std::memcmp(hdr, traceMagic, 4) != 0) {
        error_ = "not a tpnet trace (bad magic)";
        return;
    }
    info_.version = getU16(hdr + 4);
    info_.flags = getU16(hdr + 6);
    info_.recordSize = getU32(hdr + 8);
    info_.seed = getU64(hdr + 16);
    if (info_.version != traceFormatVersion) {
        std::ostringstream os;
        os << "unsupported trace version " << info_.version
           << " (reader supports " << traceFormatVersion << ")";
        error_ = os.str();
        return;
    }
    if (info_.recordSize != traceRecordSize) {
        std::ostringstream os;
        os << "unexpected record size " << info_.recordSize
           << " (expected " << traceRecordSize << ")";
        error_ = os.str();
    }
}

bool
TraceReader::next(TraceEvent *ev)
{
    if (!ok())
        return false;
    std::uint8_t rec[traceRecordSize];
    is_.read(reinterpret_cast<char *>(rec), sizeof(rec));
    const auto got = is_.gcount();
    if (got == 0)
        return false;  // clean EOF
    if (got != static_cast<std::streamsize>(sizeof(rec))) {
        std::ostringstream os;
        os << "truncated record " << records_ << " (" << got << " of "
           << sizeof(rec) << " bytes)";
        error_ = os.str();
        return false;
    }
    *ev = decodeTraceEvent(rec);
    digest_ = fnv1a64(rec, sizeof(rec), digest_);
    ++records_;
    return true;
}

} // namespace tpnet::obs
