/**
 * @file
 * Versioned binary checkpoint container + tail-digest trace tee.
 *
 * A checkpoint file is a 40-byte header followed by an opaque
 * little-endian payload (DESIGN.md §6h):
 *
 *   header:  magic "TPCK" | u16 version | u16 flags
 *            | u64 payload_size | u64 payload_digest
 *            | u64 config_digest | u64 reserved
 *
 * The payload digest is FNV-1a 64 over the payload bytes, so a flipped
 * or truncated byte is rejected before any state is deserialized. The
 * config digest is supplied by the caller (a digest of the campaign
 * spec the snapshot belongs to) and lets restore refuse a checkpoint
 * recorded under a different configuration. The payload itself is
 * written through CkWriter / read back through CkReader — symmetric
 * reference-taking primitives so one field list per type serves both
 * save and load (see src/chaos/snapshot.cpp).
 *
 * DigestTee is a TraceSink that folds every event into a running
 * FNV-1a digest using the exact trace_format record encoding (the
 * same mapping TraceRecorder applies), optionally forwarding to a
 * downstream sink. Resetting it at a checkpoint boundary yields a
 * "tail digest" over the events after the snapshot — the golden value
 * a restore-then-run must reproduce bit-identically.
 */

#ifndef TPNET_OBS_CHECKPOINT_HPP
#define TPNET_OBS_CHECKPOINT_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace_format.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace tpnet::obs {

/** Current checkpoint container version. */
constexpr std::uint16_t checkpointFormatVersion = 1;

/** Parsed checkpoint-file header. */
struct CheckpointFileInfo
{
    std::uint16_t version = checkpointFormatVersion;
    std::uint16_t flags = 0;
    std::uint64_t payloadSize = 0;
    std::uint64_t payloadDigest = 0;
    std::uint64_t configDigest = 0;
};

/**
 * Buffered checkpoint payload writer. Primitives take non-const
 * references so the identical io() field list drives both directions;
 * the writer only reads through them.
 */
class CkWriter
{
  public:
    static constexpr bool isReader = false;

    void u8(std::uint8_t &v);
    void u16(std::uint16_t &v);
    void u32(std::uint32_t &v);
    void u64(std::uint64_t &v);
    void i32(std::int32_t &v);
    void i64(std::int64_t &v);
    void f64(double &v);
    void b(bool &v);
    void str(std::string &v);

    std::uint64_t bytes() const { return payload_.size(); }

    /** FNV-1a 64 of the payload written so far. */
    std::uint64_t payloadDigest() const;

    /** Emit header + payload to @p os. */
    void writeTo(std::ostream &os, std::uint64_t config_digest) const;

  private:
    std::vector<std::uint8_t> payload_;
};

/**
 * Checkpoint reader. Construction parses and validates the header,
 * reads the payload, and verifies the payload digest; field reads
 * then mirror CkWriter. Errors (bad magic, version mismatch,
 * truncation, digest mismatch, payload under/overrun) are reported
 * via ok()/error(), never by aborting.
 */
class CkReader
{
  public:
    static constexpr bool isReader = true;

    explicit CkReader(std::istream &is);

    bool ok() const { return error_.empty(); }
    const std::string &error() const { return error_; }
    const CheckpointFileInfo &info() const { return info_; }

    /** Unread payload bytes (container-size plausibility checks). */
    std::size_t remaining() const { return payload_.size() - pos_; }

    void u8(std::uint8_t &v);
    void u16(std::uint16_t &v);
    void u32(std::uint32_t &v);
    void u64(std::uint64_t &v);
    void i32(std::int32_t &v);
    void i64(std::int64_t &v);
    void f64(double &v);
    void b(bool &v);
    void str(std::string &v);

    /**
     * Declare deserialization complete: any unread payload bytes are
     * an error (state layout drift between writer and reader).
     */
    void finish();

    /**
     * Record a structural failure discovered by the deserializer
     * itself (e.g. a serialized count that contradicts the network
     * geometry). First failure wins; subsequent reads become no-ops.
     */
    void fail(const std::string &why);

  private:
    const std::uint8_t *take(std::size_t n);

    CheckpointFileInfo info_;
    std::vector<std::uint8_t> payload_;
    std::size_t pos_ = 0;
    std::string error_;
};

/** Parse only the header of a checkpoint file (ckinfo subcommand). */
bool readCheckpointInfo(std::istream &is, CheckpointFileInfo *info,
                        std::string *error);

/**
 * TraceSink folding every event into a running FNV-1a digest over the
 * trace_format record encoding, optionally forwarding each hook to a
 * downstream sink. reset(cycle) restarts the digest at a checkpoint
 * boundary so digest() covers only the tail after that boundary.
 */
class DigestTee : public TraceSink
{
  public:
    explicit DigestTee(TraceSink *downstream = nullptr)
        : downstream_(downstream)
    {
    }

    void flitCrossed(Cycle now, const Link &link, int vc, const Flit &flit,
                     bool control_lane) override;
    void flitInjected(Cycle now, NodeId node, const Flit &flit) override;
    void flitDelivered(Cycle now, NodeId node, const Flit &flit) override;
    void vcAllocated(Cycle now, const Link &link, int vc,
                     const Message &msg, int hop_idx) override;
    void vcReleased(Cycle now, const Link &link, int vc,
                    const Message &msg, int hop_idx) override;
    void probeEvent(Cycle now, const Message &msg,
                    ProbeEvent event) override;
    void messageCreated(Cycle now, const Message &msg) override;
    void messageTerminal(Cycle now, const Message &msg,
                         MsgOutcome outcome) override;

    /** Restart the digest; subsequent events form the tail. */
    void reset(Cycle from);

    std::uint64_t digest() const { return digest_; }
    std::uint64_t records() const { return records_; }

    /** Cycle of the last reset (0 if never reset). */
    Cycle tailFrom() const { return tailFrom_; }

  private:
    void fold(const TraceEvent &ev);

    TraceSink *downstream_ = nullptr;
    std::uint64_t digest_ = 14695981039346656037ull;
    std::uint64_t records_ = 0;
    Cycle tailFrom_ = 0;
};

} // namespace tpnet::obs

#endif // TPNET_OBS_CHECKPOINT_HPP
