/**
 * @file
 * Trace replay and trace-level property checks.
 *
 * Everything here consumes recorded TraceEvent sequences — never a live
 * Network — so the same analyses run on a file read back from disk
 * (tpnet_trace replay/check) and on an in-memory recording (the
 * property-test suite).
 */

#ifndef TPNET_OBS_REPLAY_HPP
#define TPNET_OBS_REPLAY_HPP

#include <string>
#include <vector>

#include "metrics/timespace.hpp"
#include "obs/trace_format.hpp"

namespace tpnet::obs {

/**
 * Rebuild the Fig. 1 time-space diagram of @p target from recorded
 * events (the offline twin of attaching a TimeSpaceTrace to a live
 * run). With @p target == invalidMsg the first *delivered* message of
 * the trace is used (falling back to the first created).
 */
TimeSpaceTrace replayTimeSpace(const std::vector<TraceEvent> &events,
                               MsgId target = invalidMsg);

/** Outcome of a trace-level property check. */
struct CheckResult
{
    bool ok = true;
    std::string error;     ///< first violation, empty when ok
    std::size_t checked = 0; ///< property-relevant events examined
};

/**
 * Section 2.2 flow-control invariant, checked per message: a data flit
 * may only cross path hop h once the CMU counter at h has received K
 * positive acknowledgments, i.e. once the header has advanced at least
 * K hops past h (or the probe has reached the destination and PathDone
 * opened the residual gates). Meaningful for fault-free scouting runs;
 * @p scout_k is the configured scouting distance K.
 */
CheckResult checkScoutGap(const std::vector<TraceEvent> &events,
                          int scout_k);

/**
 * VC conservation: an allocation may only land on a free trio, a
 * release must match the allocation's owner, and (when
 * @p require_drained — i.e. the run ended quiescent) every allocation
 * has been released by the end of the trace.
 */
CheckResult checkVcBalance(const std::vector<TraceEvent> &events,
                           bool require_drained = true);

/** Read all records of @p reader (error text in CheckResult on failure). */
CheckResult readAll(TraceReader &reader, std::vector<TraceEvent> *out);

} // namespace tpnet::obs

#endif // TPNET_OBS_REPLAY_HPP
