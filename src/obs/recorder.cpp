#include "obs/recorder.hpp"

#include <ostream>

#include "core/message.hpp"
#include "core/network.hpp"
#include "core/pool.hpp"
#include "router/link.hpp"
#include "sim/log.hpp"
#include "traffic/injector.hpp"

namespace tpnet::obs {

void
TraceRecorder::append(const TraceEvent &ev)
{
    std::uint8_t rec[traceRecordSize];
    encodeTraceEvent(ev, rec);
    digest_ = fnv1a64(rec, sizeof(rec), digest_);
    events_.push_back(ev);
}

void
TraceRecorder::flitCrossed(Cycle now, const Link &link, int vc,
                           const Flit &flit, bool control_lane)
{
    (void)control_lane;  // recoverable from vc < 0
    TraceEvent ev;
    ev.kind = TraceEventKind::FlitCrossed;
    ev.flitType = static_cast<std::uint8_t>(flit.type);
    ev.vc = static_cast<std::int8_t>(vc);
    ev.link = static_cast<std::uint32_t>(link.id);
    ev.node = static_cast<std::uint32_t>(link.src);
    ev.cycle = now;
    ev.msg = flit.msg;
    ev.seq = flit.seq;
    ev.hop = flit.hopIdx;
    ev.epoch = flit.epoch;
    append(ev);
}

void
TraceRecorder::flitInjected(Cycle now, NodeId node, const Flit &flit)
{
    TraceEvent ev;
    ev.kind = TraceEventKind::FlitInjected;
    ev.flitType = static_cast<std::uint8_t>(flit.type);
    ev.node = static_cast<std::uint32_t>(node);
    ev.cycle = now;
    ev.msg = flit.msg;
    ev.seq = flit.seq;
    ev.hop = flit.hopIdx;
    ev.epoch = flit.epoch;
    append(ev);
}

void
TraceRecorder::flitDelivered(Cycle now, NodeId node, const Flit &flit)
{
    TraceEvent ev;
    ev.kind = TraceEventKind::FlitDelivered;
    ev.flitType = static_cast<std::uint8_t>(flit.type);
    ev.node = static_cast<std::uint32_t>(node);
    ev.cycle = now;
    ev.msg = flit.msg;
    ev.seq = flit.seq;
    ev.hop = flit.hopIdx;
    ev.epoch = flit.epoch;
    append(ev);
}

void
TraceRecorder::vcAllocated(Cycle now, const Link &link, int vc,
                           const Message &msg, int hop_idx)
{
    TraceEvent ev;
    ev.kind = TraceEventKind::VcAllocated;
    ev.vc = static_cast<std::int8_t>(vc);
    ev.link = static_cast<std::uint32_t>(link.id);
    ev.node = static_cast<std::uint32_t>(link.dst);
    ev.cycle = now;
    ev.msg = msg.id;
    ev.hop = hop_idx;
    ev.epoch = msg.epoch;
    append(ev);
}

void
TraceRecorder::vcReleased(Cycle now, const Link &link, int vc,
                          const Message &msg, int hop_idx)
{
    TraceEvent ev;
    ev.kind = TraceEventKind::VcReleased;
    ev.vc = static_cast<std::int8_t>(vc);
    ev.link = static_cast<std::uint32_t>(link.id);
    ev.node = static_cast<std::uint32_t>(link.dst);
    ev.cycle = now;
    ev.msg = msg.id;
    ev.hop = hop_idx;
    ev.epoch = msg.epoch;
    append(ev);
}

void
TraceRecorder::probeEvent(Cycle now, const Message &msg, ProbeEvent event)
{
    TraceEvent ev;
    ev.kind = TraceEventKind::Probe;
    ev.detail = static_cast<std::uint8_t>(event);
    ev.node = static_cast<std::uint32_t>(msg.hdr.cur);
    ev.cycle = now;
    ev.msg = msg.id;
    ev.hop = static_cast<std::int32_t>(msg.path.size()) - 1;
    ev.epoch = msg.epoch;
    append(ev);
}

void
TraceRecorder::messageCreated(Cycle now, const Message &msg)
{
    TraceEvent ev;
    ev.kind = TraceEventKind::MsgCreated;
    ev.node = static_cast<std::uint32_t>(msg.src);
    ev.aux = static_cast<std::uint32_t>(msg.dst);
    ev.cycle = now;
    ev.msg = msg.id;
    ev.seq = msg.length;
    append(ev);
}

void
TraceRecorder::messageTerminal(Cycle now, const Message &msg,
                               MsgOutcome outcome)
{
    TraceEvent ev;
    ev.kind = TraceEventKind::MsgTerminal;
    ev.detail = static_cast<std::uint8_t>(outcome);
    ev.node = static_cast<std::uint32_t>(msg.src);
    ev.aux = static_cast<std::uint32_t>(msg.dst);
    ev.cycle = now;
    ev.msg = msg.id;
    append(ev);
}

void
TraceRecorder::writeBinary(std::ostream &os, std::uint64_t seed) const
{
    TraceWriter w(os, seed);
    for (const TraceEvent &ev : events_)
        w.write(ev);
}

void
TraceRecorder::writeJsonl(std::ostream &os) const
{
    for (const TraceEvent &ev : events_)
        os << traceEventJson(ev) << '\n';
}

void
TraceRecorder::clear()
{
    events_.clear();
    digest_ = 14695981039346656037ull;
}

std::vector<RecordSpec>
goldenSpecs(std::uint64_t seed)
{
    SimConfig base;
    base.k = 4;
    base.n = 2;
    base.msgLength = 8;
    base.load = 0.15;
    base.seed = seed;

    std::vector<RecordSpec> specs(4);

    // Fault-free wormhole routing (DP is the paper's WR protocol).
    specs[0].cfg = base;
    specs[0].cfg.protocol = Protocol::Duato;

    // Scouting with a fixed scouting distance K = 3.
    specs[1].cfg = base;
    specs[1].cfg.protocol = Protocol::Scouting;
    specs[1].cfg.scoutK = 3;

    // Two-Phase around a static link fault present at power-on.
    specs[2].cfg = base;
    specs[2].cfg.protocol = Protocol::TwoPhase;
    specs[2].cfg.staticLinkFaults = 1;

    // Two-Phase with a node killed mid-run (kill walks + retries).
    specs[3].cfg = base;
    specs[3].cfg.protocol = Protocol::TwoPhase;
    specs[3].killNode = 5;
    specs[3].killAt = 120;

    // Decorrelate the scenarios' traffic without extra knobs.
    for (std::size_t i = 0; i < specs.size(); ++i)
        specs[i].cfg.seed = seed + 0x9e3779b97f4a7c15ull * i;
    return specs;
}

const char *
goldenSpecName(std::size_t i)
{
    switch (i) {
      case 0: return "wr-faultfree";
      case 1: return "sr-k3";
      case 2: return "tp-staticfault";
      case 3: return "tp-dynkill";
    }
    return "?";
}

namespace {

TraceRecorder
recordOne(const RecordSpec &spec)
{
    Network net(spec.cfg);
    Injector inj(net);
    TraceRecorder rec;
    net.attachTrace(&rec);
    for (Cycle c = 0; c < spec.cycles; ++c) {
        if (spec.killNode != invalidNode && c == spec.killAt)
            net.failNode(spec.killNode);
        inj.step();
        net.step();
    }
    inj.stop();
    // Keep stepping the (stopped) injector through the drain so
    // closed-loop replies still flush; a stopped open-loop injector
    // draws nothing, so legacy trace digests are unchanged.
    for (Cycle c = 0;
         c < spec.drain && !(net.quiescent() && !inj.repliesPending());
         ++c) {
        inj.step();
        net.step();
    }
    net.attachTrace(nullptr);
    return rec;
}

} // namespace

TraceRecorder
recordRun(const RecordSpec &spec, std::size_t jobs)
{
    if (jobs <= 1)
        return recordOne(spec);

    // Record the identical scenario on every worker concurrently; any
    // cross-thread interference or hidden shared state shows up as a
    // digest divergence here.
    std::vector<TraceRecorder> recs(jobs);
    parallelFor(jobs, jobs,
                [&](std::size_t i) { recs[i] = recordOne(spec); });
    for (std::size_t i = 1; i < recs.size(); ++i) {
        if (recs[i].digest() != recs[0].digest() ||
            recs[i].size() != recs[0].size()) {
            tpnet_panic("concurrent record runs diverged: worker ", i,
                        " digest ", recs[i].digest(), " (", recs[i].size(),
                        " events) vs worker 0 digest ", recs[0].digest(),
                        " (", recs[0].size(), " events)");
        }
    }
    return recs[0];
}

} // namespace tpnet::obs
