#include "topology/express.hpp"

#include <algorithm>
#include <queue>

#include "sim/log.hpp"

namespace tpnet {

ExpressCubeTopology::ExpressCubeTopology(int k, int n, int gap)
    : TorusTopology(k, n, true), gap_(gap)
{
    if (gap < 2 || gap >= k)
        tpnet_fatal("express gap ", gap, " out of range [2, k) for k=", k);
    // Same node set as the torus, but 4n ports per node.
    initGeometry(stride_[n_], 4 * n_);

    // BFS over one ring's residues with steps {+-1, +-gap}: minimal hop
    // count to cover each coordinate delta. Shared by all dimensions.
    ringDist_.assign(static_cast<std::size_t>(k_), -1);
    ringDist_[0] = 0;
    std::queue<int> frontier;
    frontier.push(0);
    while (!frontier.empty()) {
        const int c = frontier.front();
        frontier.pop();
        for (int step : {1, -1, gap_, -gap_}) {
            const int next = ((c + step) % k_ + k_) % k_;
            if (ringDist_[next] < 0) {
                ringDist_[next] = ringDist_[c] + 1;
                frontier.push(next);
            }
        }
    }
}

int
ExpressCubeTopology::diameter() const
{
    return n_ * *std::max_element(ringDist_.begin(), ringDist_.end());
}

double
ExpressCubeTopology::avgMinDistance() const
{
    double ring = 0.0;
    for (int c = 0; c < k_; ++c)
        ring += ringDist_[c];
    ring /= static_cast<double>(k_);
    return ring * static_cast<double>(n_);
}

int
ExpressCubeTopology::stepFor(int port) const
{
    if (!isExpress(port))
        return stepOf(dirOf(port));
    return (port - 2 * n_) % 2 == 0 ? gap_ : -gap_;
}

NodeId
ExpressCubeTopology::neighbor(NodeId node, int port) const
{
    if (!isExpress(port))
        return TorusTopology::neighbor(node, port);
    const int dim = expressDim(port);
    const int c =
        ((coord(node, dim) + stepFor(port)) % k_ + k_) % k_;
    return node + (c - coord(node, dim)) * stride_[dim];
}

int
ExpressCubeTopology::ringDelta(NodeId cur, NodeId dst, int dim) const
{
    return ((coord(dst, dim) - coord(cur, dim)) % k_ + k_) % k_;
}

int
ExpressCubeTopology::distance(NodeId from, NodeId to) const
{
    int dist = 0;
    for (int d = 0; d < n_; ++d)
        dist += ringDist_[static_cast<std::size_t>(ringDelta(from, to, d))];
    return dist;
}

bool
ExpressCubeTopology::portProfitable(NodeId cur, int port, NodeId dst) const
{
    if (cur == dst)
        return false;
    const int dim = isExpress(port) ? expressDim(port) : dimOf(port);
    const int delta = ringDelta(cur, dst, dim);
    const int after = ((delta - stepFor(port)) % k_ + k_) % k_;
    return ringDist_[static_cast<std::size_t>(after)] <
           ringDist_[static_cast<std::size_t>(delta)];
}

std::vector<int>
ExpressCubeTopology::profitablePorts(NodeId cur, NodeId dst) const
{
    // Per dimension prefer the express channel over the local one (cover
    // distance in fewer hops); across dimensions keep the cube heuristic
    // of serving the dimension with the most remaining distance first.
    std::vector<int> ports;
    ports.reserve(static_cast<std::size_t>(radix_));
    for (int d = 0; d < n_; ++d) {
        for (int port : {2 * n_ + 2 * d, 2 * n_ + 2 * d + 1,
                         portOf(d, Dir::Plus), portOf(d, Dir::Minus)}) {
            if (portProfitable(cur, port, dst))
                ports.push_back(port);
        }
    }
    std::stable_sort(ports.begin(), ports.end(), [this, cur, dst](int a, int b) {
        const int da = isExpress(a) ? expressDim(a) : dimOf(a);
        const int db = isExpress(b) ? expressDim(b) : dimOf(b);
        return ringDist_[static_cast<std::size_t>(ringDelta(cur, dst, da))] >
               ringDist_[static_cast<std::size_t>(ringDelta(cur, dst, db))];
    });
    return ports;
}

std::uint8_t
ExpressCubeTopology::datelineAfter(NodeId node, int port,
                                   std::uint8_t state) const
{
    if (!isExpress(port))
        return TorusTopology::datelineAfter(node, port, state);
    // An express hop crosses its ring's dateline (the k-1 -> 0 edge) when
    // the stride passes the wrap point.
    const int dim = expressDim(port);
    const int c = coord(node, dim);
    const bool crosses =
        stepFor(port) > 0 ? (c + gap_ >= k_) : (c - gap_ < 0);
    if (crosses)
        state |= static_cast<std::uint8_t>(1u << dim);
    return state;
}

} // namespace tpnet
