#include "topology/torus.hpp"

#include <algorithm>
#include <cstdlib>

#include "sim/log.hpp"

namespace tpnet {

TorusTopology::TorusTopology(int k, int n, bool wrap)
    : k_(k), n_(n), wrap_(wrap)
{
    if (k < 2 || n < 1 || n > maxDims)
        tpnet_fatal("bad torus geometry k=", k, " n=", n);
    stride_[0] = 1;
    for (int d = 0; d < n_; ++d)
        stride_[d + 1] = stride_[d] * k_;
    initGeometry(stride_[n_], 2 * n_);
}

double
TorusTopology::avgMinDistance() const
{
    if (!wrap_) {
        // Mesh: mean |a - b| over a uniform pair per dimension is
        // (k^2 - 1) / (3k).
        const double kd = static_cast<double>(k_);
        return static_cast<double>(n_) * (kd * kd - 1.0) / (3.0 * kd);
    }
    // Mean minimal distance along one ring of k nodes, uniform over all
    // destinations including the source, times n dimensions. For even k
    // the per-ring mean is k/4; computed exactly here for any k.
    double ring = 0.0;
    for (int d = 1; d < k_; ++d)
        ring += std::min(d, k_ - d);
    ring /= static_cast<double>(k_);
    return ring * static_cast<double>(n_);
}

int
TorusTopology::coord(NodeId node, int dim) const
{
    return (node / stride_[dim]) % k_;
}

NodeId
TorusTopology::nodeAt(const OffsetVec &coords) const
{
    NodeId id = 0;
    for (int d = 0; d < n_; ++d) {
        int c = coords[d] % k_;
        if (c < 0)
            c += k_;
        id += c * stride_[d];
    }
    return id;
}

NodeId
TorusTopology::neighbor(NodeId node, int port) const
{
    const int dim = dimOf(port);
    const int step = stepOf(dirOf(port));
    int c = coord(node, dim) + step;
    if (c < 0)
        c += k_;
    else if (c >= k_)
        c -= k_;
    return node + (c - coord(node, dim)) * stride_[dim];
}

bool
TorusTopology::portPresent(NodeId node, int port) const
{
    return wrap_ || !wrapsAround(node, port);
}

OffsetVec
TorusTopology::offsets(NodeId from, NodeId to) const
{
    OffsetVec off{};
    if (!wrap_) {
        // Mesh: the minimal path never leaves the grid.
        for (int d = 0; d < n_; ++d)
            off[d] = coord(to, d) - coord(from, d);
        return off;
    }
    for (int d = 0; d < n_; ++d) {
        int delta = coord(to, d) - coord(from, d);
        if (delta > k_ / 2)
            delta -= k_;
        else if (delta < -(k_ - 1) / 2)
            delta += k_;
        // For even k a distance of exactly k/2 can be reached either way;
        // normalize ties to the positive direction.
        if (2 * delta == -k_)
            delta = k_ / 2;
        off[d] = delta;
    }
    return off;
}

int
TorusTopology::distance(NodeId from, NodeId to) const
{
    const OffsetVec off = offsets(from, to);
    int dist = 0;
    for (int d = 0; d < n_; ++d)
        dist += std::abs(off[d]);
    return dist;
}

std::vector<int>
TorusTopology::profitablePorts(const OffsetVec &off) const
{
    std::vector<int> ports;
    ports.reserve(static_cast<std::size_t>(2 * n_));
    for (int d = 0; d < n_; ++d) {
        for (Dir dir : {Dir::Plus, Dir::Minus}) {
            if (portProfitable(off, portOf(d, dir)))
                ports.push_back(portOf(d, dir));
        }
    }
    return ports;
}

bool
TorusTopology::portProfitable(const OffsetVec &off, int port) const
{
    // A hop is profitable when it reduces the remaining ring distance.
    // When the offset is exactly k/2 both torus directions are minimal.
    const int d = dimOf(port);
    if (off[d] == 0)
        return false;
    if (wrap_ && 2 * std::abs(off[d]) == k_)
        return true;
    return (off[d] > 0 && dirOf(port) == Dir::Plus) ||
           (off[d] < 0 && dirOf(port) == Dir::Minus);
}

std::vector<int>
TorusTopology::profitablePorts(NodeId cur, NodeId dst) const
{
    const OffsetVec off = offsets(cur, dst);
    std::vector<int> ports = profitablePorts(off);
    std::stable_sort(ports.begin(), ports.end(), [&off](int a, int b) {
        return std::abs(off[dimOf(a)]) > std::abs(off[dimOf(b)]);
    });
    return ports;
}

bool
TorusTopology::portProfitable(NodeId cur, int port, NodeId dst) const
{
    return portProfitable(offsets(cur, dst), port);
}

int
TorusTopology::escapePort(NodeId cur, NodeId dst) const
{
    const OffsetVec off = offsets(cur, dst);
    for (int d = 0; d < n_; ++d) {
        if (off[d] > 0)
            return portOf(d, Dir::Plus);
        if (off[d] < 0)
            return portOf(d, Dir::Minus);
    }
    return -1;
}

int
TorusTopology::escapeClass(NodeId cur, int port, NodeId dst,
                           std::uint8_t dateline, int escape_vcs) const
{
    (void)cur;
    (void)dst;
    const int cls = (dateline >> dimOf(port)) & 1;
    return std::min(cls, escape_vcs - 1);
}

std::uint8_t
TorusTopology::datelineAfter(NodeId node, int port,
                             std::uint8_t state) const
{
    if (crossesDateline(node, port))
        state |= static_cast<std::uint8_t>(1u << dimOf(port));
    return state;
}

OffsetVec
TorusTopology::advance(const OffsetVec &off, int port) const
{
    OffsetVec next = off;
    const int d = dimOf(port);
    // Moving in + reduces a positive offset by one; moving against the
    // offset increases the remaining distance, wrapping around the ring
    // when the magnitude would exceed the minimal representation.
    next[d] -= stepOf(dirOf(port));
    if (wrap_) {
        if (next[d] > k_ / 2)
            next[d] -= k_;
        else if (next[d] < -(k_ - 1) / 2)
            next[d] += k_;
        if (2 * next[d] == -k_)
            next[d] = k_ / 2;
    }
    return next;
}

bool
TorusTopology::wrapsAround(NodeId node, int port) const
{
    const int d = dimOf(port);
    const int c = coord(node, d);
    if (dirOf(port) == Dir::Plus)
        return c == k_ - 1;
    return c == 0;
}

bool
TorusTopology::crossesDateline(NodeId node, int port) const
{
    return wrap_ && wrapsAround(node, port);
}

} // namespace tpnet
