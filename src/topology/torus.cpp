#include "topology/torus.hpp"

#include <cstdlib>

#include "sim/log.hpp"

namespace tpnet {

TorusTopology::TorusTopology(int k, int n, bool wrap)
    : k_(k), n_(n), radix_(2 * n), wrap_(wrap)
{
    if (k < 2 || n < 1 || n > maxDims)
        tpnet_fatal("bad torus geometry k=", k, " n=", n);
    stride_[0] = 1;
    for (int d = 0; d < n_; ++d)
        stride_[d + 1] = stride_[d] * k_;
    nodes_ = stride_[n_];
}

int
TorusTopology::coord(NodeId node, int dim) const
{
    return (node / stride_[dim]) % k_;
}

NodeId
TorusTopology::nodeAt(const OffsetVec &coords) const
{
    NodeId id = 0;
    for (int d = 0; d < n_; ++d) {
        int c = coords[d] % k_;
        if (c < 0)
            c += k_;
        id += c * stride_[d];
    }
    return id;
}

NodeId
TorusTopology::neighbor(NodeId node, int port) const
{
    const int dim = dimOf(port);
    const int step = stepOf(dirOf(port));
    int c = coord(node, dim) + step;
    if (c < 0)
        c += k_;
    else if (c >= k_)
        c -= k_;
    return node + (c - coord(node, dim)) * stride_[dim];
}

OffsetVec
TorusTopology::offsets(NodeId from, NodeId to) const
{
    OffsetVec off{};
    if (!wrap_) {
        // Mesh: the minimal path never leaves the grid.
        for (int d = 0; d < n_; ++d)
            off[d] = coord(to, d) - coord(from, d);
        return off;
    }
    for (int d = 0; d < n_; ++d) {
        int delta = coord(to, d) - coord(from, d);
        if (delta > k_ / 2)
            delta -= k_;
        else if (delta < -(k_ - 1) / 2)
            delta += k_;
        // For even k a distance of exactly k/2 can be reached either way;
        // normalize ties to the positive direction.
        if (2 * delta == -k_)
            delta = k_ / 2;
        off[d] = delta;
    }
    return off;
}

int
TorusTopology::distance(NodeId from, NodeId to) const
{
    const OffsetVec off = offsets(from, to);
    int dist = 0;
    for (int d = 0; d < n_; ++d)
        dist += std::abs(off[d]);
    return dist;
}

std::vector<int>
TorusTopology::profitablePorts(const OffsetVec &off) const
{
    std::vector<int> ports;
    ports.reserve(static_cast<std::size_t>(2 * n_));
    for (int d = 0; d < n_; ++d) {
        for (Dir dir : {Dir::Plus, Dir::Minus}) {
            if (portProfitable(off, portOf(d, dir)))
                ports.push_back(portOf(d, dir));
        }
    }
    return ports;
}

bool
TorusTopology::portProfitable(const OffsetVec &off, int port) const
{
    // A hop is profitable when it reduces the remaining ring distance.
    // When the offset is exactly k/2 both torus directions are minimal.
    const int d = dimOf(port);
    if (off[d] == 0)
        return false;
    if (wrap_ && 2 * std::abs(off[d]) == k_)
        return true;
    return (off[d] > 0 && dirOf(port) == Dir::Plus) ||
           (off[d] < 0 && dirOf(port) == Dir::Minus);
}

OffsetVec
TorusTopology::advance(const OffsetVec &off, int port) const
{
    OffsetVec next = off;
    const int d = dimOf(port);
    // Moving in + reduces a positive offset by one; moving against the
    // offset increases the remaining distance, wrapping around the ring
    // when the magnitude would exceed the minimal representation.
    next[d] -= stepOf(dirOf(port));
    if (wrap_) {
        if (next[d] > k_ / 2)
            next[d] -= k_;
        else if (next[d] < -(k_ - 1) / 2)
            next[d] += k_;
        if (2 * next[d] == -k_)
            next[d] = k_ / 2;
    }
    return next;
}

bool
TorusTopology::wrapsAround(NodeId node, int port) const
{
    const int d = dimOf(port);
    const int c = coord(node, d);
    if (dirOf(port) == Dir::Plus)
        return c == k_ - 1;
    return c == 0;
}

bool
TorusTopology::crossesDateline(NodeId node, int port) const
{
    return wrap_ && wrapsAround(node, port);
}

} // namespace tpnet
