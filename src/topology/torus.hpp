/**
 * @file
 * Torus-connected k-ary n-cube topology (paper Section 2.1).
 *
 * Nodes are numbered in mixed-radix order: node id = sum coord[d] * k^d.
 * Each node has 2n network ports (portOf(dim, dir)) plus the PE connection
 * which the router model treats separately. A unidirectional physical link
 * is identified by LinkId = node * 2n + port and runs from `node` out of
 * `port` into `neighbor(node, port)`, arriving on the opposite port.
 */

#ifndef TPNET_TOPOLOGY_TORUS_HPP
#define TPNET_TOPOLOGY_TORUS_HPP

#include <array>
#include <vector>

#include "sim/types.hpp"

namespace tpnet {

/** Signed per-dimension offsets from a node to a destination. */
using OffsetVec = std::array<int, maxDims>;

/**
 * Geometry and addressing of a k-ary n-cube, torus-connected by default
 * (paper Section 2.1). With @p wrap = false the same node/port/link
 * addressing describes a mesh: the wraparound channels still have ids
 * (so link numbering is uniform) but the Network marks them absent,
 * offsets never point across the edge, and no dateline classes are
 * needed.
 */
class TorusTopology
{
  public:
    TorusTopology(int k, int n, bool wrap = true);

    int k() const { return k_; }
    int n() const { return n_; }
    bool wrap() const { return wrap_; }
    int nodes() const { return nodes_; }
    int radix() const { return radix_; }
    int links() const { return nodes_ * radix_; }
    int
    diameter() const
    {
        return wrap_ ? n_ * (k_ / 2) : n_ * (k_ - 1);
    }

    /** Coordinate of @p node along @p dim. */
    int coord(NodeId node, int dim) const;

    /** Node at the given coordinates (first n entries used). */
    NodeId nodeAt(const OffsetVec &coords) const;

    /** Neighbor reached through @p port (torus wraparound). */
    NodeId neighbor(NodeId node, int port) const;

    /** Global id of the unidirectional link out of @p node via @p port. */
    LinkId
    linkId(NodeId node, int port) const
    {
        return node * radix_ + port;
    }

    /** Source node of link @p link. */
    NodeId linkSrc(LinkId link) const { return link / radix_; }

    /** Output port of link @p link at its source node. */
    int linkPort(LinkId link) const { return link % radix_; }

    /** Destination node of link @p link. */
    NodeId
    linkDst(LinkId link) const
    {
        return neighbor(linkSrc(link), linkPort(link));
    }

    /** Link running in the opposite direction over the same physical wire. */
    LinkId
    reverseLink(LinkId link) const
    {
        return linkId(linkDst(link), oppositePort(linkPort(link)));
    }

    /**
     * Minimal signed offset from @p from to @p to in each dimension.
     * |offset| <= k/2; ties (distance exactly k/2) resolve to +.
     */
    OffsetVec offsets(NodeId from, NodeId to) const;

    /** Minimal hop distance between two nodes. */
    int distance(NodeId from, NodeId to) const;

    /**
     * Ports that make minimal progress from a node whose offset vector to
     * the destination is @p off (profitable links, paper Section 2.1).
     */
    std::vector<int> profitablePorts(const OffsetVec &off) const;

    /** True when moving through @p port reduces |offset| in its dimension. */
    bool portProfitable(const OffsetVec &off, int port) const;

    /**
     * Offset vector after moving through @p port: the port's dimension
     * component moves one step toward zero (profitable) or away from it
     * (misroute), wrapping so |offset| stays within the ring.
     */
    OffsetVec advance(const OffsetVec &off, int port) const;

    /**
     * True when a hop through @p port out of @p node crosses the dateline
     * of the port's dimension (the wrap edge between coords k-1 and 0).
     * Used for the two-class escape-channel (deterministic channel)
     * deadlock-avoidance scheme on each torus ring. Always false on a
     * mesh (no ring, no dateline needed).
     */
    bool crossesDateline(NodeId node, int port) const;

    /**
     * True when the hop through @p port out of @p node is a wraparound
     * channel (coords k-1 -> 0 or 0 -> k-1), regardless of wrap mode —
     * these are the links a mesh marks absent.
     */
    bool wrapsAround(NodeId node, int port) const;

  private:
    int k_;
    int n_;
    int nodes_;
    int radix_;
    bool wrap_;
    std::array<int, maxDims + 1> stride_;
};

} // namespace tpnet

#endif // TPNET_TOPOLOGY_TORUS_HPP
