/**
 * @file
 * Torus-connected k-ary n-cube topology (paper Section 2.1), plus the
 * first-class mesh variant.
 *
 * Nodes are numbered in mixed-radix order: node id = sum coord[d] * k^d.
 * Each node has 2n network ports (portOf(dim, dir)) plus the PE connection
 * which the router model treats separately. A unidirectional physical
 * link is identified by LinkId = node * 2n + port and runs from `node`
 * out of `port` into `neighbor(node, port)`, arriving on the opposite
 * port. The escape subfunction is e-cube (dimension-order) routing with
 * two dateline VC classes per torus ring (one class on a mesh).
 */

#ifndef TPNET_TOPOLOGY_TORUS_HPP
#define TPNET_TOPOLOGY_TORUS_HPP

#include <array>
#include <vector>

#include "sim/types.hpp"
#include "topology/topology.hpp"

namespace tpnet {

/**
 * Geometry and addressing of a k-ary n-cube, torus-connected by default
 * (paper Section 2.1). With @p wrap = false the same node/port/link
 * addressing describes a mesh: the wraparound channels still have ids
 * (so link numbering is uniform) but portPresent() reports them absent,
 * offsets never point across the edge, and no dateline classes are
 * needed. MeshTopology below names that variant as a first-class
 * registered topology.
 */
class TorusTopology : public Topology
{
  public:
    TorusTopology(int k, int n, bool wrap = true);

    int k() const { return k_; }
    int n() const { return n_; }
    bool wrap() const { return wrap_; }

    const char *name() const override { return wrap_ ? "torus" : "mesh"; }
    TopologyKind
    kind() const override
    {
        return wrap_ ? TopologyKind::Torus : TopologyKind::Mesh;
    }

    int
    diameter() const override
    {
        return wrap_ ? n_ * (k_ / 2) : n_ * (k_ - 1);
    }

    double avgMinDistance() const override;

    /** Coordinate of @p node along @p dim. */
    int coord(NodeId node, int dim) const;

    /** Node at the given coordinates (first n entries used). */
    NodeId nodeAt(const OffsetVec &coords) const;

    /** Neighbor reached through @p port (torus wraparound). */
    NodeId neighbor(NodeId node, int port) const override;

    /** Mesh wraparound channels do not physically exist. */
    bool portPresent(NodeId node, int port) const override;

    /**
     * Minimal signed offset from @p from to @p to in each dimension.
     * |offset| <= k/2; ties (distance exactly k/2) resolve to +.
     */
    OffsetVec offsets(NodeId from, NodeId to) const override;

    /** Minimal hop distance between two nodes. */
    int distance(NodeId from, NodeId to) const override;

    /**
     * Ports that make minimal progress from a node whose offset vector to
     * the destination is @p off (profitable links, paper Section 2.1).
     */
    std::vector<int> profitablePorts(const OffsetVec &off) const;

    /** True when moving through @p port reduces |offset| in its dimension. */
    bool portProfitable(const OffsetVec &off, int port) const;

    /**
     * Profitable ports ordered most-remaining-offset dimension first
     * (the adaptive selection heuristic; ties keep +/- enumeration
     * order, matching the historical selection function exactly).
     */
    std::vector<int> profitablePorts(NodeId cur, NodeId dst) const override;

    bool portProfitable(NodeId cur, int port, NodeId dst) const override;

    /** Opposite direction of the same dimension (Theorem 2 pairing). */
    int pairedPort(int port) const override { return oppositePort(port); }

    /** E-cube: lowest dimension with a nonzero offset. */
    int escapePort(NodeId cur, NodeId dst) const override;

    /** Dateline class of the port's ring (class 1 after the dateline). */
    int escapeClass(NodeId cur, int port, NodeId dst, std::uint8_t dateline,
                    int escape_vcs) const override;

    std::uint8_t datelineAfter(NodeId node, int port,
                               std::uint8_t state) const override;

    int minEscapeVcs() const override { return wrap_ && k_ > 2 ? 2 : 1; }

    const TorusTopology *cube() const override { return this; }

    /**
     * Offset vector after moving through @p port: the port's dimension
     * component moves one step toward zero (profitable) or away from it
     * (misroute), wrapping so |offset| stays within the ring.
     */
    OffsetVec advance(const OffsetVec &off, int port) const;

    /**
     * True when a hop through @p port out of @p node crosses the dateline
     * of the port's dimension (the wrap edge between coords k-1 and 0).
     * Used for the two-class escape-channel (deterministic channel)
     * deadlock-avoidance scheme on each torus ring. Always false on a
     * mesh (no ring, no dateline needed).
     */
    bool crossesDateline(NodeId node, int port) const;

    /**
     * True when the hop through @p port out of @p node is a wraparound
     * channel (coords k-1 -> 0 or 0 -> k-1), regardless of wrap mode —
     * these are the links a mesh marks absent.
     */
    bool wrapsAround(NodeId node, int port) const;

  protected:
    int k_;
    int n_;
    bool wrap_;
    std::array<int, maxDims + 1> stride_;
};

/**
 * k-ary n-mesh as a first-class topology (not a wrap flag): identical
 * addressing to the torus, wraparound channels structurally absent, a
 * single escape VC class suffices (e-cube on a mesh is acyclic with no
 * datelines).
 */
class MeshTopology : public TorusTopology
{
  public:
    MeshTopology(int k, int n) : TorusTopology(k, n, false) {}
};

} // namespace tpnet

#endif // TPNET_TOPOLOGY_TORUS_HPP
