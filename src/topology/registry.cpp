#include "topology/registry.hpp"

#include "sim/log.hpp"
#include "topology/dragonfly.hpp"
#include "topology/express.hpp"
#include "topology/torus.hpp"

namespace tpnet {

namespace {

std::unique_ptr<const Topology>
makeTorus(const SimConfig &cfg)
{
    return std::make_unique<TorusTopology>(cfg.k, cfg.n, true);
}

std::unique_ptr<const Topology>
makeMesh(const SimConfig &cfg)
{
    return std::make_unique<MeshTopology>(cfg.k, cfg.n);
}

std::unique_ptr<const Topology>
makeExpress(const SimConfig &cfg)
{
    return std::make_unique<ExpressCubeTopology>(cfg.k, cfg.n,
                                                 cfg.expressGap);
}

std::unique_ptr<const Topology>
makeDragonfly(const SimConfig &cfg)
{
    return std::make_unique<DragonflyTopology>(cfg.dfRouters, cfg.dfGlobal);
}

SimConfig
smallCube(TopologyKind kind, int k)
{
    SimConfig cfg;
    cfg.topology = kind;
    cfg.wrap = kind != TopologyKind::Mesh;
    cfg.k = k;
    cfg.n = 2;
    cfg.msgLength = 4;
    return cfg;
}

SimConfig
wallTorus()
{
    return smallCube(TopologyKind::Torus, 4); // 16 nodes, radix 4
}

SimConfig
wallMesh()
{
    return smallCube(TopologyKind::Mesh, 4); // 16 nodes, radix 4
}

SimConfig
wallExpress()
{
    SimConfig cfg = smallCube(TopologyKind::Express, 6); // 36 nodes, radix 8
    cfg.expressGap = 2;
    return cfg;
}

SimConfig
wallDragonfly()
{
    SimConfig cfg;
    cfg.topology = TopologyKind::Dragonfly;
    cfg.dfRouters = 4; // g = 5 groups, 20 nodes, radix 4
    cfg.dfGlobal = 1;
    cfg.msgLength = 4;
    return cfg;
}

} // namespace

const std::vector<TopologyEntry> &
topologyRegistry()
{
    static const std::vector<TopologyEntry> registry = {
        {"torus", TopologyKind::Torus, makeTorus, wallTorus},
        {"mesh", TopologyKind::Mesh, makeMesh, wallMesh},
        {"express", TopologyKind::Express, makeExpress, wallExpress},
        {"dragonfly", TopologyKind::Dragonfly, makeDragonfly,
         wallDragonfly},
    };
    return registry;
}

const TopologyEntry &
topologyEntry(TopologyKind kind)
{
    for (const TopologyEntry &entry : topologyRegistry()) {
        if (entry.kind == kind)
            return entry;
    }
    tpnet_fatal("unregistered topology kind ", static_cast<int>(kind));
}

std::unique_ptr<const Topology>
makeTopology(const SimConfig &cfg)
{
    return topologyEntry(cfg.effectiveTopology()).make(cfg);
}

} // namespace tpnet
