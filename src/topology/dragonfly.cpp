#include "topology/dragonfly.hpp"

#include <algorithm>
#include <queue>

#include "sim/log.hpp"

namespace tpnet {

DragonflyTopology::DragonflyTopology(int routers, int global)
    : a_(routers), h_(global), g_(routers * global + 1)
{
    if (routers < 2)
        tpnet_fatal("dragonfly needs at least 2 routers per group (got ",
                    routers, ")");
    if (global < 1)
        tpnet_fatal("dragonfly needs at least 1 global channel per router "
                    "(got ", global, ")");
    initGeometry(g_ * a_, (a_ - 1) + h_);

    // All-pairs BFS: with h > 1 a two-global detour can beat the direct
    // <= 3-hop hierarchical route, so the distance table is computed on
    // the real graph rather than from the route structure.
    const int N = nodes();
    dist_.assign(static_cast<std::size_t>(N) * static_cast<std::size_t>(N),
                 0);
    std::vector<int> hops(static_cast<std::size_t>(N));
    for (NodeId src = 0; src < N; ++src) {
        std::fill(hops.begin(), hops.end(), -1);
        hops[static_cast<std::size_t>(src)] = 0;
        std::queue<NodeId> frontier;
        frontier.push(src);
        while (!frontier.empty()) {
            const NodeId u = frontier.front();
            frontier.pop();
            for (int port = 0; port < radix(); ++port) {
                const NodeId v = neighbor(u, port);
                if (hops[static_cast<std::size_t>(v)] < 0) {
                    hops[static_cast<std::size_t>(v)] =
                        hops[static_cast<std::size_t>(u)] + 1;
                    frontier.push(v);
                }
            }
        }
        for (NodeId v = 0; v < N; ++v) {
            const int d = hops[static_cast<std::size_t>(v)];
            if (d < 0)
                tpnet_fatal("dragonfly a=", a_, " h=", h_,
                            " is not connected: ", src, " -/-> ", v);
            dist_[static_cast<std::size_t>(src) *
                      static_cast<std::size_t>(N) +
                  static_cast<std::size_t>(v)] =
                static_cast<std::uint8_t>(d);
            if (d > diameter_)
                diameter_ = d;
        }
    }
}

double
DragonflyTopology::avgMinDistance() const
{
    double total = 0.0;
    for (std::uint8_t d : dist_)
        total += static_cast<double>(d);
    return total / (static_cast<double>(nodes()) *
                    static_cast<double>(nodes()));
}

NodeId
DragonflyTopology::neighbor(NodeId node, int port) const
{
    const int G = group(node);
    const int r = router(node);
    if (!isGlobal(port))
        return G * a_ + (r + 1 + port) % a_;
    const int c = r * h_ + (port - (a_ - 1));
    const int D = (G + c + 1) % g_;
    const int cd = groupChannel(D, G);
    return D * a_ + cd / h_;
}

int
DragonflyTopology::arrivalPort(NodeId node, int port) const
{
    if (!isGlobal(port))
        return a_ - 2 - port;
    const int G = group(node);
    const int c = router(node) * h_ + (port - (a_ - 1));
    const int D = (G + c + 1) % g_;
    const int cd = groupChannel(D, G);
    return (a_ - 1) + cd % h_;
}

int
DragonflyTopology::distance(NodeId from, NodeId to) const
{
    return dist_[static_cast<std::size_t>(from) *
                     static_cast<std::size_t>(nodes()) +
                 static_cast<std::size_t>(to)];
}

int
DragonflyTopology::escapePort(NodeId cur, NodeId dst) const
{
    if (cur == dst)
        return -1;
    const int G = group(cur);
    const int r = router(cur);
    const int D = group(dst);
    if (G == D)
        return localPort(r, router(dst));
    const int c = groupChannel(G, D);
    if (c / h_ == r)
        return (a_ - 1) + c % h_; // this router owns the global channel
    return localPort(r, c / h_); // local hop to the gateway router
}

int
DragonflyTopology::escapeClass(NodeId cur, int port, NodeId dst,
                               std::uint8_t dateline, int escape_vcs) const
{
    (void)port;
    (void)dateline;
    const int cls = group(cur) == group(dst) ? 1 : 0;
    return std::min(cls, escape_vcs - 1);
}

} // namespace tpnet
