/**
 * @file
 * Named topology registry: the single place that knows how to turn a
 * SimConfig into a concrete Topology, and the list the conformance wall
 * (tests/topology/test_conformance_wall.cpp) iterates so that adding a
 * topology automatically subjects it to the full contract checks —
 * channel-table involution, escape-walk termination, escape-CDG
 * acyclicity, and all-pairs delivery on a live network.
 */

#ifndef TPNET_TOPOLOGY_REGISTRY_HPP
#define TPNET_TOPOLOGY_REGISTRY_HPP

#include <memory>
#include <vector>

#include "sim/config.hpp"
#include "topology/topology.hpp"

namespace tpnet {

/** One registered topology family. */
struct TopologyEntry
{
    const char *name;   ///< matches topologyName(kind)
    TopologyKind kind;
    /// Build the topology described by @p cfg (geometry fields only).
    std::unique_ptr<const Topology> (*make)(const SimConfig &cfg);
    /// A small valid instance of this family for the conformance wall:
    /// a few dozen nodes so all-pairs checks stay fast.
    SimConfig (*wallConfig)();
};

/** All registered topology families, in TopologyKind order. */
const std::vector<TopologyEntry> &topologyRegistry();

/** Registry entry for @p kind (dies on an unregistered kind). */
const TopologyEntry &topologyEntry(TopologyKind kind);

/** Build the topology configured by @p cfg (cfg.effectiveTopology()). */
std::unique_ptr<const Topology> makeTopology(const SimConfig &cfg);

} // namespace tpnet

#endif // TPNET_TOPOLOGY_REGISTRY_HPP
