/**
 * @file
 * Express-channel k-ary n-cube: the torus of Section 2.1 augmented with
 * one express channel pair of stride e per dimension and direction
 * (after Dally's express cubes). Ports [0, 2n) are the ordinary local
 * torus channels; ports [2n, 4n) are express, numbered 2n + 2d (+e in
 * dimension d) and 2n + 2d + 1 (-e), so the even/odd port pairing (and
 * oppositePort arrival) of the cube family is preserved.
 *
 * Express channels are purely adaptive capacity: the escape subfunction
 * is the unchanged local-channel e-cube with dateline classes, so the
 * torus Theorem 3 argument carries over verbatim. An express hop that
 * passes the wrap edge sets its dimension's dateline bit exactly like a
 * local wraparound hop.
 */

#ifndef TPNET_TOPOLOGY_EXPRESS_HPP
#define TPNET_TOPOLOGY_EXPRESS_HPP

#include <vector>

#include "topology/torus.hpp"

namespace tpnet {

/** Torus with express channels of stride @p gap in every dimension. */
class ExpressCubeTopology : public TorusTopology
{
  public:
    ExpressCubeTopology(int k, int n, int gap);

    int gap() const { return gap_; }

    const char *name() const override { return "express"; }
    TopologyKind kind() const override { return TopologyKind::Express; }

    int diameter() const override;
    double avgMinDistance() const override;

    NodeId neighbor(NodeId node, int port) const override;

    int distance(NodeId from, NodeId to) const override;

    std::vector<int> profitablePorts(NodeId cur, NodeId dst) const override;
    bool portProfitable(NodeId cur, int port, NodeId dst) const override;

    std::uint8_t datelineAfter(NodeId node, int port,
                               std::uint8_t state) const override;

  private:
    bool isExpress(int port) const { return port >= 2 * n_; }
    int expressDim(int port) const { return (port - 2 * n_) / 2; }
    /** Signed coordinate step of @p port (+1/-1 local, +e/-e express). */
    int stepFor(int port) const;
    /** Remaining ring distance in @p port's dimension from cur to dst. */
    int ringDelta(NodeId cur, NodeId dst, int dim) const;

    int gap_;
    /** ringDist_[c]: min hops to cover residue c with steps {±1, ±e}. */
    std::vector<int> ringDist_;
};

} // namespace tpnet

#endif // TPNET_TOPOLOGY_EXPRESS_HPP
