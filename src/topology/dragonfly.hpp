/**
 * @file
 * Canonical one-dimensional dragonfly (Kim/Dally/Scott/Abts DAL'08
 * parameterization): g groups of a routers each, every router holding
 * h global channels, with the balanced g = a*h + 1 so exactly one
 * global channel connects every ordered group pair.
 *
 * Node id = group * a + router. Ports [0, a-1) are local: port p of
 * router r reaches router (r + 1 + p) mod a (the group is a complete
 * graph), arriving on port a-2-p — note the arrival port is NOT
 * oppositePort(p), which is why arrivalPort() is part of the Topology
 * interface. Ports [a-1, a-1+h) are global: router r's global channel
 * j is the group's channel index c = r*h + j, wired to group
 * (G + c + 1) mod g.
 *
 * The escape subfunction is minimal hierarchical routing (local to the
 * gateway router, global, local to the destination router) with
 * destination-keyed VC classes instead of datelines: hops in a foreign
 * group use class 0, hops inside the destination group use class 1.
 * Every escape path climbs the rank order (local,0) < (global,0) <
 * (local,1), so the escape CDG is acyclic with 2 escape VCs.
 */

#ifndef TPNET_TOPOLOGY_DRAGONFLY_HPP
#define TPNET_TOPOLOGY_DRAGONFLY_HPP

#include <vector>

#include "topology/topology.hpp"

namespace tpnet {

/** Balanced dragonfly with @p routers per group and @p global channels
 *  per router (g = routers * global + 1 groups). */
class DragonflyTopology : public Topology
{
  public:
    DragonflyTopology(int routers, int global);

    int routersPerGroup() const { return a_; }
    int globalsPerRouter() const { return h_; }
    int groups() const { return g_; }

    const char *name() const override { return "dragonfly"; }
    TopologyKind kind() const override { return TopologyKind::Dragonfly; }

    int diameter() const override { return diameter_; }
    double avgMinDistance() const override;

    NodeId neighbor(NodeId node, int port) const override;
    int arrivalPort(NodeId node, int port) const override;

    int distance(NodeId from, NodeId to) const override;

    int escapePort(NodeId cur, NodeId dst) const override;
    int escapeClass(NodeId cur, int port, NodeId dst, std::uint8_t dateline,
                    int escape_vcs) const override;

    int minEscapeVcs() const override { return 2; }

    /** Group of @p node. */
    int group(NodeId node) const { return node / a_; }

    /** Router index of @p node within its group. */
    int router(NodeId node) const { return node % a_; }

    /** True for a global port. */
    bool isGlobal(int port) const { return port >= a_ - 1; }

  private:
    /** Local port at router @p from reaching router @p to (same group). */
    int localPort(int from, int to) const
    {
        return ((to - from - 1) % a_ + a_) % a_;
    }

    /** Group-level channel index [0, a*h) carrying src -> dst traffic. */
    int groupChannel(int src_group, int dst_group) const
    {
        return ((dst_group - src_group - 1) % g_ + g_) % g_;
    }

    int a_;
    int h_;
    int g_;
    int diameter_ = 0;
    /** All-pairs minimal hop distances, dist_[u * nodes + v]. */
    std::vector<std::uint8_t> dist_;
};

} // namespace tpnet

#endif // TPNET_TOPOLOGY_DRAGONFLY_HPP
