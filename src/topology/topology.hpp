/**
 * @file
 * Graph-topology interface consumed by the network, the routing
 * protocols, the escape-channel layer, and the CWG/knot analyzer.
 *
 * A topology declares a fixed node set [0, nodes) where every node has
 * the same radix of output ports [0, radix). A unidirectional physical
 * link is identified globally by LinkId = node * radix + port; ports
 * without a physical channel (mesh edges) report portPresent() false
 * and their links are marked structurally absent by the Network.
 *
 * The channel table must be an involution over present (node, port)
 * pairs: the hop out of (u, p) arrives at v = neighbor(u, p) on input
 * port q = arrivalPort(u, p), and the reverse wire satisfies
 * neighbor(v, q) == u with arrivalPort(v, q) == p. The topology
 * conformance wall (tests/topology/test_conformance_wall.cpp) checks
 * this for every registered topology.
 *
 * Each topology also describes its escape (deterministic) subfunction:
 * escapePort() names the single escape hop toward a destination,
 * escapeClass() maps it onto a dateline/escape VC class, and
 * datelineAfter() evolves the per-message dateline state. The escape
 * channel-dependency graph induced by these three functions must be
 * acyclic (Theorem 3); verify::checkEscapeCdg walks it statically and
 * the live CWG oracle re-checks it during runs.
 */

#ifndef TPNET_TOPOLOGY_TOPOLOGY_HPP
#define TPNET_TOPOLOGY_TOPOLOGY_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace tpnet {

/** Signed per-dimension offsets from a node to a destination. */
using OffsetVec = std::array<int, maxDims>;

class TorusTopology;

/** Abstract network topology (see file comment for the contract). */
class Topology
{
  public:
    virtual ~Topology();

    virtual const char *name() const = 0;
    virtual TopologyKind kind() const = 0;

    int nodes() const { return nodes_; }
    int radix() const { return radix_; }
    int links() const { return nodes_ * radix_; }

    /** Maximum minimal hop distance over all node pairs. */
    virtual int diameter() const = 0;

    /**
     * Mean minimal hop count, uniform over all (src, dst) ordered pairs
     * including src == dst. Default: brute force over distance().
     */
    virtual double avgMinDistance() const;

    /** Neighbor reached through @p port. Defined even when the port is
     *  structurally absent (the link still has an id). */
    virtual NodeId neighbor(NodeId node, int port) const = 0;

    /** Input port at neighbor(node, port) the hop arrives on. */
    virtual int
    arrivalPort(NodeId node, int port) const
    {
        (void)node;
        return oppositePort(port);
    }

    /** False when the channel out of (node, port) does not physically
     *  exist (mesh wraparound edges). */
    virtual bool
    portPresent(NodeId node, int port) const
    {
        (void)node;
        (void)port;
        return true;
    }

    /** Global id of the unidirectional link out of @p node via @p port. */
    LinkId
    linkId(NodeId node, int port) const
    {
        return node * radix_ + port;
    }

    /** Source node of link @p link. */
    NodeId linkSrc(LinkId link) const { return link / radix_; }

    /** Output port of link @p link at its source node. */
    int linkPort(LinkId link) const { return link % radix_; }

    /** Destination node of link @p link. */
    NodeId
    linkDst(LinkId link) const
    {
        return neighbor(linkSrc(link), linkPort(link));
    }

    /** Link running in the opposite direction over the same physical wire. */
    LinkId
    reverseLink(LinkId link) const
    {
        const NodeId u = linkSrc(link);
        const int p = linkPort(link);
        return linkId(neighbor(u, p), arrivalPort(u, p));
    }

    /** Minimal hop distance between two nodes. */
    virtual int distance(NodeId from, NodeId to) const = 0;

    /**
     * Header offset fields from @p from to @p to. Cube families use the
     * paper's signed per-dimension offsets (Fig. 9); graph topologies
     * default to {distance, 0, ...} so HeaderState::atDest() holds
     * exactly at the destination.
     */
    virtual OffsetVec offsets(NodeId from, NodeId to) const;

    /**
     * Present ports whose hop makes minimal progress from @p cur toward
     * @p dst (profitable links, paper Section 2.1), returned in the
     * selection function's preference order. Cube families order by
     * decreasing remaining offset magnitude; the default orders by
     * ascending port number.
     */
    virtual std::vector<int> profitablePorts(NodeId cur, NodeId dst) const;

    /** True when the hop out of (cur, port) makes minimal progress. */
    virtual bool portProfitable(NodeId cur, int port, NodeId dst) const;

    /**
     * Port whose traversal cancels a misroute taken through @p port
     * (Theorem 2 bookkeeping: the opposite direction of the same
     * dimension on cubes), or -1 when the topology has no such pairing
     * and misroutes are simply counted.
     */
    virtual int
    pairedPort(int port) const
    {
        (void)port;
        return -1;
    }

    /**
     * The escape (deterministic) subfunction's single output port from
     * @p cur toward @p dst, or -1 at the destination. Walking
     * escapePort() repeatedly must reach @p dst in < nodes() hops.
     */
    virtual int escapePort(NodeId cur, NodeId dst) const = 0;

    /**
     * Escape VC class for the hop out of (cur, port) toward @p dst,
     * given the message's dateline state; in [0, escape_vcs). The
     * induced escape CDG must be acyclic (Theorem 3).
     */
    virtual int escapeClass(NodeId cur, int port, NodeId dst,
                            std::uint8_t dateline, int escape_vcs) const = 0;

    /** Dateline state after the hop out of (node, port). */
    virtual std::uint8_t
    datelineAfter(NodeId node, int port, std::uint8_t state) const
    {
        (void)node;
        (void)port;
        return state;
    }

    /** Escape VC classes the topology's deadlock-freedom argument needs. */
    virtual int minEscapeVcs() const = 0;

    /**
     * Downcast for cube-coordinate consumers (coordinate traffic
     * patterns, the Fig. 9 header codec, trace helpers): non-null for
     * the cube family (torus / mesh / express), null otherwise.
     */
    virtual const TorusTopology *cube() const { return nullptr; }

  protected:
    Topology() = default;

    /** Set node count and radix; dies unless 0 < radix <= maxPorts. */
    void initGeometry(int nodes, int radix);

    int nodes_ = 0;
    int radix_ = 0;
};

} // namespace tpnet

#endif // TPNET_TOPOLOGY_TOPOLOGY_HPP
