#include "topology/topology.hpp"

#include "sim/log.hpp"

namespace tpnet {

Topology::~Topology() = default;

void
Topology::initGeometry(int nodes, int radix)
{
    if (nodes < 2)
        tpnet_fatal("topology needs at least 2 nodes (got ", nodes, ")");
    if (radix < 1 || radix > maxPorts)
        tpnet_fatal("topology radix ", radix, " out of range [1, ",
                    maxPorts, "]");
    nodes_ = nodes;
    radix_ = radix;
}

double
Topology::avgMinDistance() const
{
    // Mean over all ordered pairs including src == dst, matching the
    // cube closed forms. Quadratic; concrete topologies with closed
    // forms or distance tables override.
    double total = 0.0;
    for (NodeId u = 0; u < nodes_; ++u) {
        for (NodeId v = 0; v < nodes_; ++v)
            total += static_cast<double>(distance(u, v));
    }
    return total / (static_cast<double>(nodes_) *
                    static_cast<double>(nodes_));
}

OffsetVec
Topology::offsets(NodeId from, NodeId to) const
{
    OffsetVec off{};
    off[0] = distance(from, to);
    return off;
}

std::vector<int>
Topology::profitablePorts(NodeId cur, NodeId dst) const
{
    std::vector<int> ports;
    ports.reserve(static_cast<std::size_t>(radix_));
    for (int port = 0; port < radix_; ++port) {
        if (portProfitable(cur, port, dst))
            ports.push_back(port);
    }
    return ports;
}

bool
Topology::portProfitable(NodeId cur, int port, NodeId dst) const
{
    if (cur == dst || !portPresent(cur, port))
        return false;
    return distance(neighbor(cur, port), dst) < distance(cur, dst);
}

} // namespace tpnet
