/**
 * @file
 * Concrete routing protocols of the paper's evaluation (Section 6.0):
 *
 *  - DimOrderRouting — deterministic e-cube wormhole routing on the
 *    escape (dateline-class) channels; validation baseline.
 *  - DuatoRouting — DP [12]: fully adaptive minimal wormhole routing on
 *    the adaptive partition with dimension-order escape channels.
 *  - ScoutingRouting — SR [13] with a fixed scouting distance K on every
 *    channel; DP-style candidate selection over the control lane.
 *  - PcsRouting — plain pipelined circuit switching [18]: profitable
 *    path setup, data held at the source until the setup acknowledgment.
 *  - MbmRouting — MB-m [17]: misrouting backtracking protocol with m
 *    misroutes over PCS flow control; the conservative baseline.
 *  - TwoPhaseRouting — the paper's TP protocol (Fig. 6): DP restrictions
 *    on safe channels, SR mode across unsafe channels, detour
 *    construction (depth-first backtracking search, <= m misroutes) when
 *    the probe can no longer advance.
 */

#ifndef TPNET_ROUTING_PROTOCOLS_HPP
#define TPNET_ROUTING_PROTOCOLS_HPP

#include "routing/protocol.hpp"

namespace tpnet {

/** Deterministic dimension-order (e-cube) wormhole routing. */
class DimOrderRouting : public RoutingAlgorithm
{
  public:
    const char *name() const override { return "DOR"; }
    FlowMode initialFlow() const override { return FlowMode::Wormhole; }
    bool inlineHeader() const override { return true; }
    Decision route(Network &net, Message &msg) override;
    int
    kRegFor(const Network &, const Message &) const override
    {
        return 0;
    }
    bool emitsPosAck(const Message &) const override { return false; }
};

/** Duato's Protocol: fully adaptive minimal wormhole routing. */
class DuatoRouting : public RoutingAlgorithm
{
  public:
    const char *name() const override { return "DP"; }
    FlowMode initialFlow() const override { return FlowMode::Wormhole; }
    bool inlineHeader() const override { return true; }
    Decision route(Network &net, Message &msg) override;
    int
    kRegFor(const Network &, const Message &) const override
    {
        return 0;
    }
    bool emitsPosAck(const Message &) const override { return false; }
};

/** Scouting routing with a fixed scouting distance K. */
class ScoutingRouting : public RoutingAlgorithm
{
  public:
    explicit ScoutingRouting(int k) : scoutK_(k) {}
    const char *name() const override { return "SR"; }
    FlowMode initialFlow() const override { return FlowMode::Scout; }
    bool inlineHeader() const override { return false; }
    Decision route(Network &net, Message &msg) override;
    int
    kRegFor(const Network &, const Message &) const override
    {
        return scoutK_;
    }
    bool
    emitsPosAck(const Message &msg) const override
    {
        return scoutK_ > 0 && !msg.hdr.detour;
    }
    bool abortsOnStall(const Message &) const override { return true; }

  private:
    int scoutK_;
};

/** Plain pipelined circuit switching (profitable-only setup). */
class PcsRouting : public RoutingAlgorithm
{
  public:
    const char *name() const override { return "PCS"; }
    FlowMode initialFlow() const override { return FlowMode::PcsSetup; }
    bool inlineHeader() const override { return false; }
    Decision route(Network &net, Message &msg) override;
    int
    kRegFor(const Network &, const Message &) const override
    {
        return 0;
    }
    bool emitsPosAck(const Message &) const override { return false; }
    bool abortsOnStall(const Message &) const override { return true; }
};

/** Misrouting backtracking with m misroutes over PCS (MB-m). */
class MbmRouting : public RoutingAlgorithm
{
  public:
    explicit MbmRouting(int m) : limit_(m) {}
    const char *name() const override { return "MB-m"; }
    FlowMode initialFlow() const override { return FlowMode::PcsSetup; }
    bool inlineHeader() const override { return false; }
    Decision route(Network &net, Message &msg) override;
    int
    kRegFor(const Network &, const Message &) const override
    {
        return 0;
    }
    bool emitsPosAck(const Message &) const override { return false; }
    bool abortsOnStall(const Message &) const override { return true; }

  private:
    int limit_;
};

/** The Two-Phase fault-tolerant protocol (Fig. 6). */
class TwoPhaseRouting : public RoutingAlgorithm
{
  public:
    TwoPhaseRouting(int scout_k, int m) : scoutK_(scout_k), limit_(m) {}
    const char *name() const override { return "TP"; }
    FlowMode initialFlow() const override { return FlowMode::Wormhole; }
    bool inlineHeader() const override { return false; }
    Decision route(Network &net, Message &msg) override;
    int
    kRegFor(const Network &, const Message &msg) const override
    {
        return msg.hdr.sr ? scoutK_ : 0;
    }
    bool
    emitsPosAck(const Message &msg) const override
    {
        return scoutK_ > 0 && msg.hdr.sr && !msg.hdr.detour;
    }
    bool
    abortsOnStall(const Message &msg) const override
    {
        return msg.hdr.sr || msg.hdr.detour;
    }
    void postMove(Network &net, Message &msg) override;

  private:
    /** Detour-mode depth-first search step (shared with MB-m's shape). */
    Decision detourStep(Network &net, Message &msg);

    int scoutK_;
    int limit_;
};

} // namespace tpnet

#endif // TPNET_ROUTING_PROTOCOLS_HPP
