/**
 * @file
 * Selection-function toolkit shared by the routing protocols
 * (paper Section 2.1: the routing function supplies candidate output
 * virtual channels; the selection function picks one).
 */

#ifndef TPNET_ROUTING_SELECTION_HPP
#define TPNET_ROUTING_SELECTION_HPP

#include <optional>
#include <vector>

#include "core/message.hpp"
#include "sim/types.hpp"

namespace tpnet {

class Network;

namespace select {

/** A candidate output virtual channel. */
struct Candidate
{
    int port = -1;
    int vc = -1;
};

/** Safety requirement when filtering candidate channels. */
enum class Safety : std::uint8_t {
    SafeOnly,  ///< healthy and not marked unsafe
    Healthy,   ///< not faulty (unsafe permitted)
};

/**
 * Profitable ports from the probe's position, most-remaining-offset
 * dimension first (the selection heuristic spreads load adaptively).
 */
std::vector<int> profitableByOffset(const Network &net, const Message &msg);

/**
 * First free adaptive VC on a profitable channel meeting @p safety,
 * scanning dimensions by decreasing remaining offset.
 */
std::optional<Candidate> adaptiveProfitable(Network &net,
                                            const Message &msg,
                                            Safety safety);

/**
 * Free VC (any partition) on an untried profitable healthy channel —
 * the backtracking protocols' forward step.
 */
std::optional<Candidate> anyVcProfitableUntried(Network &net, Message &msg);

/**
 * Free adaptive VC on an untried profitable healthy channel, safety
 * ignored — the TP detour's forward step (detours use only adaptive
 * channels, Theorem 3).
 */
std::optional<Candidate> anyAdaptiveProfitableUntried(Network &net,
                                                      Message &msg);

/**
 * Free VC on an untried, unprofitable, healthy channel for misrouting.
 * Channels in the same dimension as the probe's arrival channel are
 * preferred (Theorem 2 condition iii); @p adaptive_only restricts the
 * search to the adaptive partition (TP detours use only channels of C2,
 * Theorem 3); @p allow_uturn permits the reverse of the arrival channel
 * ("the header can route using the virtual channels in the opposite
 * direction", Section 4.0).
 */
std::optional<Candidate> misrouteUntried(Network &net, Message &msg,
                                         bool adaptive_only,
                                         bool allow_uturn);

} // namespace select

} // namespace tpnet

#endif // TPNET_ROUTING_SELECTION_HPP
