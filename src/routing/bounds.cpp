#include "routing/bounds.hpp"

#include "sim/log.hpp"

namespace tpnet {
namespace bounds {

int
maxConsecutiveBacktracks(int faults, int n)
{
    if (n < 2)
        tpnet_fatal("theorem bounds need n >= 2");
    if (faults < 2 * n - 1)
        return 0;
    return (faults - 1) / (2 * n - 2);
}

int
maxConsecutiveBacktracksTurn(int faults, int n)
{
    if (n < 2)
        tpnet_fatal("theorem bounds need n >= 2");
    if (faults < 2 * n - 1)
        return 0;
    return faults / (2 * n - 2);
}

int
faultsForBacktracks(int b, int n)
{
    if (b <= 0)
        return 0;
    return 2 * n - 1 + (b - 1) * (2 * n - 2);
}

std::vector<NodeId>
alleyFaults(const TorusTopology &topo, NodeId entry, int depth)
{
    if (depth < 1 || depth + 2 >= topo.k())
        tpnet_fatal("alley depth ", depth, " does not fit a ", topo.k(),
                    "-ary ring");
    std::vector<NodeId> failed;
    // Corridor nodes one..depth hops along +dim0 from the entry; every
    // exit except the corridor itself fails, and the far end is capped.
    NodeId walk = entry;
    for (int i = 0; i < depth; ++i) {
        walk = topo.neighbor(walk, portOf(0, Dir::Plus));
        for (int d = 1; d < topo.n(); ++d) {
            failed.push_back(topo.neighbor(walk, portOf(d, Dir::Plus)));
            failed.push_back(topo.neighbor(walk, portOf(d, Dir::Minus)));
        }
    }
    failed.push_back(topo.neighbor(walk, portOf(0, Dir::Plus)));
    return failed;
}

std::vector<NodeId>
blockedDestinationFaults(const TorusTopology &topo, NodeId dst,
                         int open_port)
{
    if (topo.n() < 2)
        tpnet_fatal("blocked-destination configuration needs n >= 2");
    std::vector<NodeId> failed;
    for (int d = 0; d < 2; ++d) {
        for (Dir dir : {Dir::Plus, Dir::Minus}) {
            const int port = portOf(d, dir);
            if (port == open_port)
                continue;
            failed.push_back(topo.neighbor(dst, port));
        }
    }
    return failed;
}

} // namespace bounds
} // namespace tpnet
