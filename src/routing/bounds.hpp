/**
 * @file
 * Theorem machinery of paper Section 3.0: closed-form backtracking and
 * misrouting bounds, plus builders for the adversarial fault
 * configurations of Figs. 4 and 5 (dead-end alleys and a destination
 * whose in-plane neighborhood has failed). Tests and ablation benches
 * use these to exercise the worst-case search behavior of the
 * backtracking protocols.
 */

#ifndef TPNET_ROUTING_BOUNDS_HPP
#define TPNET_ROUTING_BOUNDS_HPP

#include <vector>

#include "sim/types.hpp"
#include "topology/torus.hpp"

namespace tpnet {

class Network;

namespace bounds {

/**
 * Theorem 1 (straight alley): maximum consecutive backtracking steps a
 * header performs given @p faults faulty components, with no previous
 * misrouting: b = (f - 1) div (2n - 2).
 */
int maxConsecutiveBacktracks(int faults, int n);

/**
 * Theorem 1 (alley ending in a turn): b = f div (2n - 2).
 */
int maxConsecutiveBacktracksTurn(int faults, int n);

/**
 * Faults needed to force @p b consecutive backtracks in a straight
 * alley: f = 2n - 1 + (b - 1)(2n - 2) — the inverse of Theorem 1.
 */
int faultsForBacktracks(int b, int n);

/**
 * Build the Fig. 4 dead-end alley: a straight corridor of @p depth
 * nodes along dimension 0 starting one hop (+dim0) from @p entry, with
 * every side exit failed, so that a probe entering the alley must
 * backtrack @p depth times. Returns the failed node ids (the caller
 * applies them via Network::failNode).
 */
std::vector<NodeId> alleyFaults(const TorusTopology &topo, NodeId entry,
                                int depth);

/**
 * Build the Fig. 5 configuration: fail the four in-plane (dims 0/1)
 * neighbors of @p dst except the one reached through @p open_port.
 * A 2-D network then requires detour construction; in higher dimensions
 * the probe can leave the plane.
 */
std::vector<NodeId> blockedDestinationFaults(const TorusTopology &topo,
                                             NodeId dst, int open_port);

} // namespace bounds

} // namespace tpnet

#endif // TPNET_ROUTING_BOUNDS_HPP
