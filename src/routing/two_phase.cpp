/**
 * @file
 * The Two-Phase (TP) fault-tolerant routing protocol — Fig. 6 of the
 * paper, implemented clause by clause.
 *
 * Phase 1 (optimistic): DP routing restrictions over safe channels with
 * WR-like flow control (K = 0, no acknowledgments). Safe adaptive
 * channels are preferred; a busy-but-healthy safe deterministic channel
 * blocks the probe (an adaptive channel freeing first may still be
 * taken, because the RCU re-evaluates every cycle).
 *
 * Transition: when the deterministic channel is faulty or unsafe, the
 * probe may take an unsafe profitable adaptive channel or the unsafe
 * deterministic channel; doing so sets the SR bit and switches the
 * message to scouting flow control — every subsequently reserved
 * virtual channel is programmed with scouting distance K (aggressive
 * configurations keep K = 0 and send no acknowledgments at all).
 *
 * Phase 2 (conservative): when the probe can no longer advance it sets
 * the detour bit: positive acknowledgments stop, the data flits freeze
 * where they stand, and the probe performs a depth-first backtracking
 * search using only adaptive channels (Theorem 3) with at most m
 * outstanding misroutes, preferring misrouting over backtracking and
 * same-dimension misroutes (Theorem 2); U-turns through the
 * opposite-direction virtual channels are permitted. The detour
 * completes when every misroute has been corrected or the destination
 * is reached; a release then re-opens the held gates ("all channels (or
 * none) in a detour are accepted").
 */

#include "routing/protocols.hpp"

#include "core/network.hpp"
#include "routing/selection.hpp"

namespace tpnet {

Decision
TwoPhaseRouting::route(Network &net, Message &msg)
{
    HeaderState &hdr = msg.hdr;
    using select::Safety;

    if (!hdr.detour) {
        // --- Phase 1: DP routing restrictions with unsafe channels ----
        // 1. Safe profitable adaptive channel.
        if (auto c = select::adaptiveProfitable(net, msg,
                                                Safety::SafeOnly)) {
            return Decision::forward(c->port, c->vc);
        }

        const int ep = net.ecubePort(msg);
        const bool ep_faulty = net.channelFaulty(hdr.cur, ep);
        const bool ep_unsafe = !ep_faulty && net.channelUnsafe(hdr.cur, ep);

        // 2. Safe deterministic channel; block while it is merely busy.
        //    Recovery mode folds the escape VCs into step 1's adaptive
        //    scan (adaptiveVcFloor() == 0), so a healthy safe e-cube
        //    port simply means "wait" — its candidates are already
        //    committed, and a knot that forms is healed, not avoided.
        if (!ep_faulty && !ep_unsafe) {
            if (net.config().recoveryMode)
                return Decision::block();
            if (net.escapeVcFree(msg, ep))
                return Decision::forward(ep, net.escapeClass(msg, ep));
            net.cwgNoteCandidate(hdr.cur, ep, net.escapeClass(msg, ep));
            return Decision::block();
        }

        // 3. Unsafe profitable adaptive channel -> switch to SR mode.
        if (auto c = select::adaptiveProfitable(net, msg,
                                                Safety::Healthy)) {
            net.enterSrMode(msg);
            return Decision::forward(c->port, c->vc);
        }

        // 4. Unsafe deterministic channel -> switch to SR mode.
        //    (Recovery mode: subsumed by step 3's full-range scan.)
        if (!net.config().recoveryMode && ep_unsafe &&
            net.escapeVcFree(msg, ep)) {
            net.enterSrMode(msg);
            return Decision::forward(ep, net.escapeClass(msg, ep));
        }

        // 5. The probe can no longer advance: construct a detour.
        net.enterSrMode(msg);
        net.enterDetour(msg);
    }

    return detourStep(net, msg);
}

Decision
TwoPhaseRouting::detourStep(Network &net, Message &msg)
{
    // Route with no restrictions, over adaptive channels only.
    if (auto c = select::anyAdaptiveProfitableUntried(net, msg))
        return Decision::forward(c->port, c->vc);

    if (msg.hdr.misroutes < limit_) {
        if (auto c = select::misrouteUntried(net, msg, true, true))
            return Decision::forward(c->port, c->vc);
    }

    if (net.canBacktrack(msg))
        return Decision::backtrack();

    // Stuck: wait for a channel to free; the stall limit hands the
    // message to the recovery mechanism ("the recovery mechanism will
    // tear down the path", Section 4.0). At the source with everything
    // searched, give up this attempt immediately.
    if (msg.path.empty()) {
        const std::uint32_t tried = net.triedHere(msg);
        for (int port = 0; port < net.topo().radix(); ++port) {
            if (!(tried & (1u << port)) &&
                !net.channelFaulty(msg.hdr.cur, port)) {
                return Decision::block();
            }
        }
        return Decision::abort();
    }
    return Decision::block();
}

void
TwoPhaseRouting::postMove(Network &net, Message &msg)
{
    // "The detour is complete when all misrouting steps performed
    // during detour construction have been corrected" (reaching the
    // destination is handled at ejection).
    if (msg.hdr.detour && msg.hdr.misroutes == 0)
        net.completeDetour(msg);
}

} // namespace tpnet
