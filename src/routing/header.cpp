#include "routing/header.hpp"

#include "sim/log.hpp"

namespace tpnet {

namespace {

/** ceil(log2(x)) for x >= 1. */
int
ceilLog2(int x)
{
    int bits = 0;
    int v = 1;
    while (v < x) {
        v <<= 1;
        ++bits;
    }
    return bits;
}

} // namespace

HeaderCodec::HeaderCodec(int k, int n)
    : k_(k), n_(n)
{
    if (n < 1 || n > maxDims)
        tpnet_fatal("HeaderCodec: bad n=", n);
    // Sign bit + magnitude covering 0..k/2.
    offBits_ = 1 + ceilLog2(k / 2 + 1);
    // header(1) + backtrack(1) + misroute(3) + detour(1) + SR(1) + offsets.
    bits_ = 1 + 1 + 3 + 1 + 1 + n_ * offBits_;
    if (bits_ > 64)
        tpnet_fatal("HeaderCodec: header exceeds 64 bits for k=", k,
                    " n=", n);
}

std::uint64_t
HeaderCodec::pack(const HeaderState &hdr) const
{
    std::uint64_t raw = 0;
    int pos = 0;
    auto put = [&raw, &pos](std::uint64_t v, int width) {
        raw |= (v & ((1ull << width) - 1)) << pos;
        pos += width;
    };
    put(1, 1);  // header bit: identifies the flit as a routing header
    put(hdr.backtrack ? 1 : 0, 1);
    put(static_cast<std::uint64_t>(hdr.misroutes), 3);
    put(hdr.detour ? 1 : 0, 1);
    put(hdr.sr ? 1 : 0, 1);
    for (int d = 0; d < n_; ++d) {
        const int off = hdr.offset[d];
        const std::uint64_t sign = off < 0 ? 1 : 0;
        const std::uint64_t mag =
            static_cast<std::uint64_t>(off < 0 ? -off : off);
        put(sign | (mag << 1), offBits_);
    }
    return raw;
}

HeaderState
HeaderCodec::unpack(std::uint64_t raw) const
{
    HeaderState hdr;
    int pos = 0;
    auto get = [&raw, &pos](int width) {
        const std::uint64_t v = (raw >> pos) & ((1ull << width) - 1);
        pos += width;
        return v;
    };
    if (get(1) != 1)
        tpnet_panic("HeaderCodec: header bit not set");
    hdr.backtrack = get(1) != 0;
    hdr.misroutes = static_cast<int>(get(3));
    hdr.detour = get(1) != 0;
    hdr.sr = get(1) != 0;
    for (int d = 0; d < n_; ++d) {
        const std::uint64_t field = get(offBits_);
        const bool neg = (field & 1) != 0;
        const int mag = static_cast<int>(field >> 1);
        hdr.offset[d] = neg ? -mag : mag;
    }
    return hdr;
}

} // namespace tpnet
