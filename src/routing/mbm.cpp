/**
 * @file
 * MB-m: misrouting backtracking protocol with m misroutes [17], the
 * paper's conservative (PCS) baseline.
 *
 * The probe performs a depth-first search: profitable channels are
 * preferred; when none is available (faulty or busy) the probe misroutes
 * as long as fewer than m misroutes are outstanding, preferring the
 * dimension it arrived on; otherwise it backtracks, releasing the last
 * trio and sending a negative acknowledgment. Since data is held at the
 * source until the path is completely established (PCS), the probe can
 * always backtrack, making the protocol deadlock-free and extremely
 * robust at the price of the 3l setup latency (Section 2.2).
 */

#include "routing/protocols.hpp"

#include "core/network.hpp"
#include "routing/selection.hpp"

namespace tpnet {

Decision
MbmRouting::route(Network &net, Message &msg)
{
    // 1. Profitable, untried, healthy channel with a free VC.
    if (auto c = select::anyVcProfitableUntried(net, msg))
        return Decision::forward(c->port, c->vc);

    // 2. Misroute while the outstanding-misroute budget allows; the
    //    search may use every virtual channel (PCS needs no escape
    //    structure) and may not U-turn (backtracking covers retreat).
    if (msg.hdr.misroutes < limit_) {
        if (auto c = select::misrouteUntried(net, msg, false, false))
            return Decision::forward(c->port, c->vc);
    }

    // 3. Backtrack (always possible under PCS: no data in the network).
    if (net.canBacktrack(msg))
        return Decision::backtrack();

    // 4. Stuck at the source. If untried healthy channels remain they
    //    are merely busy: wait for one to free. Otherwise the search is
    //    exhausted — tear down and re-try later.
    if (msg.path.empty()) {
        const std::uint32_t tried = net.triedHere(msg);
        for (int port = 0; port < net.topo().radix(); ++port) {
            if (!(tried & (1u << port)) &&
                !net.channelFaulty(msg.hdr.cur, port)) {
                return Decision::block();
            }
        }
        return Decision::abort();
    }

    // Backtracking transiently impossible; wait for the stall limit.
    return Decision::block();
}

} // namespace tpnet
