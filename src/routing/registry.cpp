#include "routing/registry.hpp"

#include <cstring>

#include "routing/protocols.hpp"
#include "sim/log.hpp"

namespace tpnet {

namespace {

std::unique_ptr<RoutingAlgorithm>
makeDor(const SimConfig &)
{
    return std::make_unique<DimOrderRouting>();
}

std::unique_ptr<RoutingAlgorithm>
makeDuato(const SimConfig &)
{
    return std::make_unique<DuatoRouting>();
}

std::unique_ptr<RoutingAlgorithm>
makeScouting(const SimConfig &cfg)
{
    return std::make_unique<ScoutingRouting>(cfg.scoutK);
}

std::unique_ptr<RoutingAlgorithm>
makePcs(const SimConfig &)
{
    return std::make_unique<PcsRouting>();
}

std::unique_ptr<RoutingAlgorithm>
makeMbm(const SimConfig &cfg)
{
    return std::make_unique<MbmRouting>(cfg.misrouteLimit);
}

std::unique_ptr<RoutingAlgorithm>
makeTwoPhase(const SimConfig &cfg)
{
    return std::make_unique<TwoPhaseRouting>(cfg.scoutK, cfg.misrouteLimit);
}

std::vector<RoutingEntry> &
mutableRegistry()
{
    // Function-local static so the builtin table exists before any
    // static-initialization-order-dependent caller can look it up.
    static std::vector<RoutingEntry> registry = {
        {"DOR", Protocol::DimOrder, makeDor},
        {"DP", Protocol::Duato, makeDuato},
        {"SR", Protocol::Scouting, makeScouting},
        {"PCS", Protocol::Pcs, makePcs},
        {"MB-m", Protocol::MBm, makeMbm},
        {"TP", Protocol::TwoPhase, makeTwoPhase},
    };
    return registry;
}

} // namespace

const std::vector<RoutingEntry> &
routingRegistry()
{
    return mutableRegistry();
}

void
registerRoutingFunction(const char *name, Protocol protocol,
                        RoutingFactory make)
{
    for (RoutingEntry &entry : mutableRegistry()) {
        if (std::strcmp(entry.name, name) == 0) {
            entry = RoutingEntry{name, protocol, make};
            return;
        }
    }
    mutableRegistry().push_back(RoutingEntry{name, protocol, make});
}

std::unique_ptr<RoutingAlgorithm>
makeRouting(Protocol protocol, const SimConfig &cfg)
{
    for (const RoutingEntry &entry : routingRegistry()) {
        if (entry.protocol == protocol)
            return entry.make(cfg);
    }
    tpnet_panic("no routing function registered for protocol ",
                protocolName(protocol));
}

std::unique_ptr<RoutingAlgorithm>
makeRouting(const std::string &name, const SimConfig &cfg)
{
    for (const RoutingEntry &entry : routingRegistry()) {
        if (name == entry.name)
            return entry.make(cfg);
    }
    tpnet_fatal("no routing function registered under \"", name, "\"");
}

} // namespace tpnet
