#include "routing/selection.hpp"

#include <algorithm>
#include <cstdlib>

#include "core/network.hpp"
#include "routing/protocols.hpp"
#include "sim/log.hpp"

namespace tpnet {

namespace select {

std::vector<int>
profitableByOffset(const Network &net, const Message &msg)
{
    const OffsetVec &off = msg.hdr.offset;
    std::vector<int> ports = net.topo().profitablePorts(off);
    std::stable_sort(ports.begin(), ports.end(), [&off](int a, int b) {
        return std::abs(off[dimOf(a)]) > std::abs(off[dimOf(b)]);
    });
    return ports;
}

namespace {

/**
 * CWG hook: an eligible port had no free VC in [lo, hi) — report each
 * as a legal candidate so a Block commits the full candidate set.
 */
void
noteCandidateRange(Network &net, NodeId cur, int port, int lo, int hi)
{
    for (int vc = lo; vc < hi; ++vc)
        net.cwgNoteCandidate(cur, port, vc);
}

} // namespace

std::optional<Candidate>
adaptiveProfitable(Network &net, const Message &msg, Safety safety)
{
    const NodeId cur = msg.hdr.cur;
    for (int port : profitableByOffset(net, msg)) {
        if (net.channelFaulty(cur, port))
            continue;
        if (safety == Safety::SafeOnly && net.channelUnsafe(cur, port))
            continue;
        const int vc = net.freeAdaptiveVc(cur, port);
        if (vc >= 0)
            return Candidate{port, vc};
        noteCandidateRange(net, cur, port, net.adaptiveVcFloor(),
                      net.vcCount());
    }
    return std::nullopt;
}

std::optional<Candidate>
anyVcProfitableUntried(Network &net, Message &msg)
{
    const NodeId cur = msg.hdr.cur;
    const std::uint32_t tried = net.triedHere(msg);
    for (int port : profitableByOffset(net, msg)) {
        if (tried & (1u << port))
            continue;
        if (net.channelFaulty(cur, port))
            continue;
        const int vc =
            net.linkAt(cur, port).firstFreeVc(0, net.vcCount());
        if (vc >= 0)
            return Candidate{port, vc};
        noteCandidateRange(net, cur, port, 0, net.vcCount());
    }
    return std::nullopt;
}

std::optional<Candidate>
anyAdaptiveProfitableUntried(Network &net, Message &msg)
{
    const NodeId cur = msg.hdr.cur;
    const std::uint32_t tried = net.triedHere(msg);
    for (int port : profitableByOffset(net, msg)) {
        if (tried & (1u << port))
            continue;
        if (net.channelFaulty(cur, port))
            continue;
        const int vc = net.freeAdaptiveVc(cur, port);
        if (vc >= 0)
            return Candidate{port, vc};
        noteCandidateRange(net, cur, port, net.adaptiveVcFloor(),
                      net.vcCount());
    }
    return std::nullopt;
}

std::optional<Candidate>
misrouteUntried(Network &net, Message &msg, bool adaptive_only,
                bool allow_uturn)
{
    const NodeId cur = msg.hdr.cur;
    const std::uint32_t tried = net.triedHere(msg);
    const int in_port = net.arrivalPort(msg);
    const int radix = net.topo().radix();

    // Candidate order: same dimension as the arrival channel first
    // (Theorem 2 condition iii, continuing straight through), then the
    // rest; the reverse of the arrival channel (a U-turn) last, and
    // only when U-turns are permitted.
    std::vector<int> order;
    order.reserve(static_cast<std::size_t>(radix));
    if (in_port >= 0)
        order.push_back(oppositePort(in_port));
    for (int port = 0; port < radix; ++port) {
        if (std::find(order.begin(), order.end(), port) == order.end() &&
            (in_port < 0 || port != in_port)) {
            order.push_back(port);
        }
    }
    if (in_port >= 0)
        order.push_back(in_port);  // U-turn candidate, lowest priority

    for (int port : order) {
        if (in_port >= 0 && port == in_port && !allow_uturn)
            continue;
        if (tried & (1u << port))
            continue;
        if (net.topo().portProfitable(msg.hdr.offset, port))
            continue;  // handled by the profitable step
        if (net.channelFaulty(cur, port))
            continue;
        const int lo = adaptive_only ? net.adaptiveVcFloor() : 0;
        const int vc = net.linkAt(cur, port).firstFreeVc(lo,
                                                         net.vcCount());
        if (vc >= 0)
            return Candidate{port, vc};
        noteCandidateRange(net, cur, port, lo, net.vcCount());
    }
    return std::nullopt;
}

} // namespace select

std::unique_ptr<RoutingAlgorithm>
makeProtocol(const SimConfig &cfg)
{
    switch (cfg.protocol) {
      case Protocol::DimOrder:
        return std::make_unique<DimOrderRouting>();
      case Protocol::Duato:
        return std::make_unique<DuatoRouting>();
      case Protocol::Scouting:
        return std::make_unique<ScoutingRouting>(cfg.scoutK);
      case Protocol::Pcs:
        return std::make_unique<PcsRouting>();
      case Protocol::MBm:
        return std::make_unique<MbmRouting>(cfg.misrouteLimit);
      case Protocol::TwoPhase:
        return std::make_unique<TwoPhaseRouting>(cfg.scoutK,
                                                 cfg.misrouteLimit);
    }
    tpnet_panic("unknown protocol");
}

} // namespace tpnet
