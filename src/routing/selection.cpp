#include "routing/selection.hpp"

#include <algorithm>
#include <cstdlib>

#include "core/network.hpp"
#include "routing/registry.hpp"
#include "sim/log.hpp"

namespace tpnet {

namespace select {

std::vector<int>
profitableByOffset(const Network &net, const Message &msg)
{
    // The topology returns profitable ports already in its selection
    // preference order (cubes: most-remaining-offset dimension first,
    // reproducing the historical offset sort here bit for bit).
    return net.topo().profitablePorts(msg.hdr.cur, msg.dst);
}

namespace {

/**
 * CWG hook: an eligible port had no free VC in [lo, hi) — report each
 * as a legal candidate so a Block commits the full candidate set.
 */
void
noteCandidateRange(Network &net, NodeId cur, int port, int lo, int hi)
{
    for (int vc = lo; vc < hi; ++vc)
        net.cwgNoteCandidate(cur, port, vc);
}

} // namespace

std::optional<Candidate>
adaptiveProfitable(Network &net, const Message &msg, Safety safety)
{
    const NodeId cur = msg.hdr.cur;
    for (int port : profitableByOffset(net, msg)) {
        if (net.channelFaulty(cur, port))
            continue;
        if (safety == Safety::SafeOnly && net.channelUnsafe(cur, port))
            continue;
        const int vc = net.freeAdaptiveVc(cur, port);
        if (vc >= 0)
            return Candidate{port, vc};
        noteCandidateRange(net, cur, port, net.adaptiveVcFloor(),
                      net.vcCount());
    }
    return std::nullopt;
}

std::optional<Candidate>
anyVcProfitableUntried(Network &net, Message &msg)
{
    const NodeId cur = msg.hdr.cur;
    const std::uint32_t tried = net.triedHere(msg);
    for (int port : profitableByOffset(net, msg)) {
        if (tried & (1u << port))
            continue;
        if (net.channelFaulty(cur, port))
            continue;
        const int vc =
            net.linkAt(cur, port).firstFreeVc(0, net.vcCount());
        if (vc >= 0)
            return Candidate{port, vc};
        noteCandidateRange(net, cur, port, 0, net.vcCount());
    }
    return std::nullopt;
}

std::optional<Candidate>
anyAdaptiveProfitableUntried(Network &net, Message &msg)
{
    const NodeId cur = msg.hdr.cur;
    const std::uint32_t tried = net.triedHere(msg);
    for (int port : profitableByOffset(net, msg)) {
        if (tried & (1u << port))
            continue;
        if (net.channelFaulty(cur, port))
            continue;
        const int vc = net.freeAdaptiveVc(cur, port);
        if (vc >= 0)
            return Candidate{port, vc};
        noteCandidateRange(net, cur, port, net.adaptiveVcFloor(),
                      net.vcCount());
    }
    return std::nullopt;
}

std::optional<Candidate>
misrouteUntried(Network &net, Message &msg, bool adaptive_only,
                bool allow_uturn)
{
    const NodeId cur = msg.hdr.cur;
    const std::uint32_t tried = net.triedHere(msg);
    const int in_port = net.arrivalPort(msg);
    const int radix = net.topo().radix();

    // Candidate order: the arrival channel's paired port first (Theorem 2
    // condition iii, continuing straight through; topologies without a
    // port pairing have no preferred continuation), then the rest; the
    // reverse of the arrival channel (a U-turn) last, and only when
    // U-turns are permitted.
    const int paired =
        in_port >= 0 ? net.topo().pairedPort(in_port) : -1;
    std::vector<int> order;
    order.reserve(static_cast<std::size_t>(radix));
    if (paired >= 0 && paired != in_port)
        order.push_back(paired);
    for (int port = 0; port < radix; ++port) {
        if (std::find(order.begin(), order.end(), port) == order.end() &&
            (in_port < 0 || port != in_port)) {
            order.push_back(port);
        }
    }
    if (in_port >= 0)
        order.push_back(in_port);  // U-turn candidate, lowest priority

    for (int port : order) {
        if (in_port >= 0 && port == in_port && !allow_uturn)
            continue;
        if (tried & (1u << port))
            continue;
        if (net.topo().portProfitable(cur, port, msg.dst))
            continue;  // handled by the profitable step
        if (net.channelFaulty(cur, port))
            continue;
        const int lo = adaptive_only ? net.adaptiveVcFloor() : 0;
        const int vc = net.linkAt(cur, port).firstFreeVc(lo,
                                                         net.vcCount());
        if (vc >= 0)
            return Candidate{port, vc};
        noteCandidateRange(net, cur, port, lo, net.vcCount());
    }
    return std::nullopt;
}

} // namespace select

std::unique_ptr<RoutingAlgorithm>
makeProtocol(const SimConfig &cfg)
{
    return makeRouting(cfg.protocol, cfg);
}

} // namespace tpnet
