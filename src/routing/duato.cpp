/**
 * @file
 * Duato's Protocol (DP) [12]: fully adaptive, minimal, deadlock-free
 * wormhole routing. Virtual channels are partitioned into an
 * unrestricted adaptive set (any minimal direction, any time) and a
 * deterministic escape set (dimension-order with dateline classes). A
 * blocked header waits; if an adaptive channel frees before the escape
 * channel does, the header is free to take it — exactly the behavior of
 * the paper's selection function (Section 4.0).
 *
 * ScoutingRouting and PcsRouting reuse the same candidate structure but
 * move their probes over the control lane with SR(K) / PCS flow control
 * (Fig. 1); they exist for the Section 2.2 latency-model experiments
 * and as building blocks.
 */

#include "routing/protocols.hpp"

#include "core/network.hpp"
#include "routing/selection.hpp"

namespace tpnet {

namespace {

/** Shared DP-style candidate selection (adaptive first, then escape). */
Decision
duatoSelect(Network &net, Message &msg)
{
    using select::Safety;
    if (auto c = select::adaptiveProfitable(net, msg, Safety::Healthy))
        return Decision::forward(c->port, c->vc);

    const int ep = net.ecubePort(msg);
    if (ep < 0)
        return Decision::eject();
    if (net.config().recoveryMode) {
        // Recovery mode: the escape partition is part of the adaptive
        // scan above (adaptiveVcFloor() == 0), so there is no separate
        // escape fallback — a blocked header just waits, and the knot
        // detector heals any deadlock that forms. A faulty e-cube port
        // still aborts: DP has no detour or backtracking.
        if (net.channelFaulty(msg.hdr.cur, ep))
            return Decision::abort();
        return Decision::block();
    }
    if (net.channelFaulty(msg.hdr.cur, ep)) {
        // DP itself is not fault tolerant: there is no detour and no
        // backtracking, so a faulty escape channel is a wait that can
        // never be satisfied. Blocking here would wedge the header (and
        // everything queued behind its circuit) forever — the stall
        // limit never fires because DP headers legitimately wait
        // unboundedly on *busy* escapes. Abort instead: recovery tears
        // the partial circuit down and the message retries or is
        // counted undeliverable.
        return Decision::abort();
    }
    if (!net.escapeVcFree(msg, ep)) {
        // Busy escape: the RCU re-polls it (and the adaptive set) every
        // cycle, so the decision can never go stale — but the wait on
        // the escape class is a CWG edge that must stay cycle-free.
        net.cwgNoteCandidate(msg.hdr.cur, ep, net.escapeClass(msg, ep));
        return Decision::block();
    }
    return Decision::forward(ep, net.escapeClass(msg, ep));
}

} // namespace

Decision
DuatoRouting::route(Network &net, Message &msg)
{
    return duatoSelect(net, msg);
}

Decision
ScoutingRouting::route(Network &net, Message &msg)
{
    // SR [13] is fully adaptive and fault tolerant: the scouting
    // distance K keeps the probe free to backtrack up to the leading
    // data flit, so faulty channels are searched around with a
    // history-guided depth-first retreat (no misrouting — SR relies on
    // full adaptivity plus backtracking).
    using select::Safety;
    if (auto c = select::anyAdaptiveProfitableUntried(net, msg))
        return Decision::forward(c->port, c->vc);

    const int ep = net.ecubePort(msg);
    const std::uint32_t tried = net.triedHere(msg);
    // Recovery mode folds the escape VCs into the adaptive scan above,
    // so the escape-class fallback disappears; the untried-healthy
    // wait and the backtracking search below still apply unchanged.
    if (!net.config().recoveryMode &&
        !net.channelFaulty(msg.hdr.cur, ep) &&
        !(tried & (1u << ep))) {
        if (net.escapeVcFree(msg, ep))
            return Decision::forward(ep, net.escapeClass(msg, ep));
        net.cwgNoteCandidate(msg.hdr.cur, ep, net.escapeClass(msg, ep));
        return Decision::block();  // healthy but busy: wait
    }

    // An untried healthy profitable channel that is merely busy is
    // worth waiting for before giving ground.
    for (int port : select::profitableByOffset(net, msg)) {
        if (!(tried & (1u << port)) &&
            !net.channelFaulty(msg.hdr.cur, port)) {
            return Decision::block();
        }
    }

    // Every remaining way forward is faulty or already searched.
    if (net.canBacktrack(msg))
        return Decision::backtrack();
    if (msg.path.empty())
        return Decision::abort();
    return Decision::block();  // the stall limit hands off to recovery
}

Decision
PcsRouting::route(Network &net, Message &msg)
{
    return duatoSelect(net, msg);
}

} // namespace tpnet
