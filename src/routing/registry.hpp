/**
 * @file
 * Named routing-function registry (the booksim RegisterRoutingFunctions
 * shape): each protocol is registered once under its canonical name
 * ("DOR", "DP", "SR", "PCS", "MB-m", "TP") with a factory closure over
 * SimConfig, and both makeProtocol() and the tools resolve protocols
 * through the registry instead of a hard-coded switch.
 */

#ifndef TPNET_ROUTING_REGISTRY_HPP
#define TPNET_ROUTING_REGISTRY_HPP

#include <memory>
#include <string>
#include <vector>

#include "sim/config.hpp"

namespace tpnet {

class RoutingAlgorithm;

/** Factory for a routing algorithm parameterized by the run config. */
using RoutingFactory =
    std::unique_ptr<RoutingAlgorithm> (*)(const SimConfig &cfg);

/** One registered routing function. */
struct RoutingEntry
{
    const char *name;   ///< canonical name, matches protocolName()
    Protocol protocol;  ///< enum value the config refers to it by
    RoutingFactory make;
};

/** All registered routing functions (builtins plus any added later). */
const std::vector<RoutingEntry> &routingRegistry();

/**
 * Register a routing function under @p name. Registering an existing
 * name replaces that entry (tests use this to interpose).
 */
void registerRoutingFunction(const char *name, Protocol protocol,
                             RoutingFactory make);

/** Build the routing function registered for @p protocol. */
std::unique_ptr<RoutingAlgorithm> makeRouting(Protocol protocol,
                                              const SimConfig &cfg);

/** Build the routing function registered under @p name. */
std::unique_ptr<RoutingAlgorithm> makeRouting(const std::string &name,
                                              const SimConfig &cfg);

} // namespace tpnet

#endif // TPNET_ROUTING_REGISTRY_HPP
