/**
 * @file
 * Deterministic dimension-order (e-cube) wormhole routing on the torus.
 *
 * Messages resolve dimensions in increasing order; each torus ring is
 * made deadlock-free with two dateline virtual-channel classes (class 0
 * before the ring's wrap edge, class 1 after). This is the escape
 * structure DP and TP rely on, exposed as a standalone protocol for
 * validation experiments and tests.
 */

#include "routing/protocols.hpp"

#include "core/network.hpp"

namespace tpnet {

Decision
DimOrderRouting::route(Network &net, Message &msg)
{
    const int port = net.ecubePort(msg);
    if (port < 0)
        return Decision::eject();
    // DOR is not fault tolerant; a faulty e-cube channel blocks forever
    // (only fault-free validation runs use this protocol).
    if (net.channelFaulty(msg.hdr.cur, port))
        return Decision::block();
    if (!net.escapeVcFree(msg, port)) {
        net.cwgNoteCandidate(msg.hdr.cur, port, net.escapeClass(msg, port));
        return Decision::block();
    }
    return Decision::forward(port, net.escapeClass(msg, port));
}

} // namespace tpnet
