/**
 * @file
 * Routing protocol interface.
 *
 * The RCU consults the configured RoutingAlgorithm once per serviced
 * header. The algorithm inspects the network (channel status, unsafe
 * bits, VC occupancy) and the probe's header state, possibly flips the
 * header's mode bits (SR, detour — Section 4.0), and returns a decision.
 * The Network applies the decision: it reserves/releases trios, moves the
 * probe, spawns acknowledgment flits, and maintains the Theorem 2
 * misroute bookkeeping.
 */

#ifndef TPNET_ROUTING_PROTOCOL_HPP
#define TPNET_ROUTING_PROTOCOL_HPP

#include "core/message.hpp"
#include "sim/config.hpp"
#include "sim/types.hpp"

namespace tpnet {

class Network;

/** Outcome of one RCU routing-service slot for one header. */
struct Decision
{
    enum class Kind : std::uint8_t {
        Forward,   ///< reserve (port, vc) and advance the probe
        Eject,     ///< probe is at the destination; complete the path
        Block,     ///< wait in place; re-try next service slot
        Backtrack, ///< release the last hop and retreat one node
        Abort,     ///< give up this setup attempt (tear down, re-try)
    };

    Kind kind = Kind::Block;
    int port = -1;  ///< output port for Forward
    int vc = -1;    ///< output VC for Forward

    static Decision
    forward(int port, int vc)
    {
        return {Kind::Forward, port, vc};
    }

    static Decision eject() { return {Kind::Eject, -1, -1}; }
    static Decision block() { return {Kind::Block, -1, -1}; }
    static Decision backtrack() { return {Kind::Backtrack, -1, -1}; }
    static Decision abort() { return {Kind::Abort, -1, -1}; }
};

/** A routing protocol: decision function plus flow control policy. */
class RoutingAlgorithm
{
  public:
    virtual ~RoutingAlgorithm() = default;

    /** Protocol name for reports. */
    virtual const char *name() const = 0;

    /** Flow control mode a fresh message starts under. */
    virtual FlowMode initialFlow() const = 0;

    /** Headers travel inline on the data lanes (pure wormhole)? */
    virtual bool inlineHeader() const = 0;

    /**
     * Decide the next action for @p msg whose probe sits at
     * msg.hdr.cur. May mutate msg.hdr mode bits.
     */
    virtual Decision route(Network &net, Message &msg) = 0;

    /**
     * Scouting distance to program into the next reserved trio for
     * @p msg (the dynamically configurable K of Section 4.0).
     */
    virtual int kRegFor(const Network &net, const Message &msg) const = 0;

    /**
     * Whether the probe's advance over a newly reserved channel emits a
     * positive acknowledgment (suppressed in detour mode and in WR-like
     * operation, Section 4.0).
     */
    virtual bool emitsPosAck(const Message &msg) const = 0;

    /**
     * Whether a probe of @p msg that has been blocked for the configured
     * stall limit should abandon the setup attempt (tear down and re-try
     * from the source) instead of waiting forever. Wormhole protocols
     * must return false — a blocked WR header simply waits.
     */
    virtual bool
    abortsOnStall(const Message &msg) const
    {
        (void)msg;
        return false;
    }

    /** Hook invoked after the Network applied a Forward decision. */
    virtual void postMove(Network &net, Message &msg) { (void)net;
                                                        (void)msg; }
};

} // namespace tpnet

#endif // TPNET_ROUTING_PROTOCOL_HPP
