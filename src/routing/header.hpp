/**
 * @file
 * Routing header state and the 6-field header flit format of Fig. 9.
 *
 * HeaderState is the live state of a message's routing probe: where it
 * is, its mode bits (backtrack / detour / SR), the outstanding misroute
 * bookkeeping of Theorem 2, and the per-dimension signed offsets to the
 * destination. PathHop frames double as the RCU history store: each frame
 * records which output ports have been searched at the node the hop leads
 * to (depth-first backtracking search, Section 4.0).
 *
 * HeaderCodec packs/unpacks the architectural header flit layout
 * (header bit, backtrack bit, 3-bit misroute field, detour bit, SR bit,
 * n offset fields) so the router-hardware costs of Section 5.0 can be
 * exercised and benchmarked.
 */

#ifndef TPNET_ROUTING_HEADER_HPP
#define TPNET_ROUTING_HEADER_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "sim/types.hpp"
#include "topology/torus.hpp"

namespace tpnet {

/** One reserved hop of a circuit. */
struct PathHop
{
    LinkId link = invalidLink;
    int vc = -1;
    /** True when this hop was a misroute (moved away from destination). */
    bool misroute = false;
    /**
     * Port whose outstanding-misroute balance this (profitable) hop
     * corrected when taken, or -1. Needed to undo the Theorem 2
     * bookkeeping exactly when the probe backtracks over the hop.
     */
    std::int8_t corrected = -1;
};

/** Live state of a message's routing probe. */
struct HeaderState
{
    /** Router at which the probe currently resides. */
    NodeId cur = invalidNode;

    /** Signed offsets from cur to the destination (Fig. 9 offset fields). */
    OffsetVec offset{};

    /** Probe is travelling toward the source (Fig. 9 backtrack bit). */
    bool backtrack = false;

    /** Detour mode (Fig. 9 detour bit): no positive acks, free search. */
    bool detour = false;

    /** SR bit (Fig. 9): probe has crossed at least one unsafe channel. */
    bool sr = false;

    /** Outstanding (uncorrected) misroutes — Theorem 2's bookkeeping. */
    int misroutes = 0;

    /**
     * Per-port outstanding misroute balance: taking an unprofitable hop
     * through a port increments its entry; a later profitable hop
     * through the paired (opposite) port corrects it. Sized for the
     * largest registered topology radix (Topology::radix() <= maxPorts).
     */
    std::array<std::int8_t, maxPorts> misBalance{};

    /** Dateline-crossed bit per dimension (escape VC class selection). */
    std::uint8_t datelineCrossed = 0;

    /** Flow control mechanism currently governing new reservations. */
    FlowMode flow = FlowMode::Wormhole;

    /** Total probe moves this setup attempt (search budget). */
    int hops = 0;

    /** Consecutive cycles the probe failed to progress (stall detector). */
    int stalled = 0;

    /** Path index whose gate carries the detour hold (-1 = source gate). */
    int holdIdx = -2;  ///< -2 = no hold placed

    bool atDest() const
    {
        for (int v : offset) {
            if (v != 0)
                return false;
        }
        return true;
    }
};

/**
 * Architectural encoding of the Fig. 9 header flit. The offset fields are
 * ceil(log2(k)) + 1 bits each (sign/magnitude range -k/2 .. k/2).
 */
class HeaderCodec
{
  public:
    /** @param k radix, @param n dimensions of the target network. */
    HeaderCodec(int k, int n);

    /** Bits in one encoded header for this geometry. */
    int bits() const { return bits_; }

    /** Number of 16-bit flits (phits) the header occupies. */
    int flits16() const { return (bits_ + 15) / 16; }

    /** Pack live header state into the architectural layout. */
    std::uint64_t pack(const HeaderState &hdr) const;

    /** Unpack an architectural header into mode bits and offsets. */
    HeaderState unpack(std::uint64_t raw) const;

  private:
    int k_;
    int n_;
    int offBits_;
    int bits_;
};

} // namespace tpnet

#endif // TPNET_ROUTING_HEADER_HPP
