#include "verify/escape_cdg.hpp"

#include <cstdint>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "topology/topology.hpp"

namespace tpnet {
namespace verify {

namespace {

/** One escape channel: link * escapeVcs + class. */
using ChanKey = std::uint64_t;

std::string
describeChan(const Topology &topo, int escape_vcs, ChanKey key)
{
    const LinkId link = static_cast<LinkId>(
        key / static_cast<std::uint64_t>(escape_vcs));
    const int cls = static_cast<int>(
        key % static_cast<std::uint64_t>(escape_vcs));
    std::ostringstream os;
    os << "node " << topo.linkSrc(link) << " port " << topo.linkPort(link)
       << " class " << cls;
    return os.str();
}

} // namespace

EscapeCdgReport
checkEscapeCdg(const Topology &topo, int escape_vcs)
{
    EscapeCdgReport rep;
    if (escape_vcs < 1)
        escape_vcs = 1;

    const int nodes = topo.nodes();
    // Dense channel ids for the adjacency; ChanKey -> small int.
    std::unordered_map<ChanKey, int> ids;
    std::vector<ChanKey> keys;
    std::vector<std::vector<int>> out;
    std::unordered_set<std::uint64_t> seenEdges;

    auto idOf = [&](ChanKey key) {
        auto it = ids.find(key);
        if (it != ids.end())
            return it->second;
        const int id = static_cast<int>(keys.size());
        ids.emplace(key, id);
        keys.push_back(key);
        out.emplace_back();
        return id;
    };

    for (NodeId src = 0; src < nodes && rep.acyclic; ++src) {
        for (NodeId dst = 0; dst < nodes; ++dst) {
            if (src == dst)
                continue;
            ++rep.walks;
            NodeId cur = src;
            std::uint8_t dateline = 0;
            int prev = -1;
            int hops = 0;
            while (cur != dst) {
                if (++hops > nodes) {
                    rep.acyclic = false;
                    std::ostringstream os;
                    os << "escape walk " << src << " -> " << dst
                       << " did not terminate within " << nodes
                       << " hops (stuck at node " << cur << ")";
                    rep.diagnosis = os.str();
                    break;
                }
                const int port = topo.escapePort(cur, dst);
                if (port < 0) {
                    rep.acyclic = false;
                    std::ostringstream os;
                    os << "escape walk " << src << " -> " << dst
                       << ": no escape port at node " << cur;
                    rep.diagnosis = os.str();
                    break;
                }
                const int cls = topo.escapeClass(cur, port, dst, dateline,
                                                 escape_vcs);
                const ChanKey chan =
                    static_cast<ChanKey>(topo.linkId(cur, port)) *
                        static_cast<std::uint64_t>(escape_vcs) +
                    static_cast<std::uint64_t>(cls);
                const int v = idOf(chan);
                if (prev >= 0 && prev != v) {
                    const std::uint64_t ek =
                        (static_cast<std::uint64_t>(prev) << 32) |
                        static_cast<std::uint64_t>(v);
                    if (seenEdges.insert(ek).second)
                        out[static_cast<std::size_t>(prev)].push_back(v);
                } else if (prev == v) {
                    // A channel depending on itself is a 1-cycle.
                    rep.acyclic = false;
                    rep.diagnosis = "escape channel self-dependency at " +
                                    describeChan(topo, escape_vcs, chan);
                }
                prev = v;
                dateline = topo.datelineAfter(cur, port, dateline);
                cur = topo.neighbor(cur, port);
            }
            if (!rep.acyclic)
                break;
        }
    }

    rep.channels = keys.size();
    rep.edges = seenEdges.size();
    if (!rep.acyclic)
        return rep;

    // Iterative three-color DFS for a cycle in the dependency graph.
    const int total = static_cast<int>(keys.size());
    std::vector<std::uint8_t> color(static_cast<std::size_t>(total), 0);
    std::vector<int> parent(static_cast<std::size_t>(total), -1);
    for (int root = 0; root < total; ++root) {
        if (color[static_cast<std::size_t>(root)] != 0)
            continue;
        // Stack of (node, next-edge-index).
        std::vector<std::pair<int, std::size_t>> stack;
        stack.emplace_back(root, 0);
        color[static_cast<std::size_t>(root)] = 1;
        while (!stack.empty()) {
            auto &[u, i] = stack.back();
            const auto &adj = out[static_cast<std::size_t>(u)];
            if (i == adj.size()) {
                color[static_cast<std::size_t>(u)] = 2;
                stack.pop_back();
                continue;
            }
            const int v = adj[i++];
            if (color[static_cast<std::size_t>(v)] == 0) {
                color[static_cast<std::size_t>(v)] = 1;
                parent[static_cast<std::size_t>(v)] = u;
                stack.emplace_back(v, 0);
            } else if (color[static_cast<std::size_t>(v)] == 1) {
                // Back edge u -> v: the cycle is v ... u -> v.
                rep.acyclic = false;
                std::vector<int> cyc;
                for (int w = u; w != v;
                     w = parent[static_cast<std::size_t>(w)])
                    cyc.push_back(w);
                cyc.push_back(v);
                std::ostringstream os;
                os << "escape CDG cycle (" << cyc.size() << " channels): ";
                for (auto it = cyc.rbegin(); it != cyc.rend(); ++it) {
                    os << describeChan(
                              topo, escape_vcs,
                              keys[static_cast<std::size_t>(*it)])
                       << " -> ";
                }
                os << describeChan(topo, escape_vcs,
                                   keys[static_cast<std::size_t>(cyc.back())]);
                rep.diagnosis = os.str();
                return rep;
            }
        }
    }
    return rep;
}

} // namespace verify
} // namespace tpnet
