/**
 * @file
 * Static escape-channel-dependency-graph checker.
 *
 * The online CWG tracker (verify/cwg.hpp) watches Theorem 3 at runtime;
 * this checker proves the *static* half of the theorem's precondition
 * for any registered topology: the escape subfunction's channel
 * dependency graph, with channels split by escape class, is acyclic.
 *
 * The check enumerates every (src, dst) pair, walks the escape path a
 * message would take if it used only escape channels from the start
 * (dateline state 0, evolved by Topology::datelineAfter exactly as the
 * router evolves it), and records each consecutive channel pair as a
 * dependency edge (link, class) -> (link, class). A depth-first search
 * then looks for a cycle. A walk that fails to terminate within
 * nodes() hops is itself a failure (the escape subfunction must be
 * connected and minimal-progress).
 *
 * This is conservative in the right direction: real traffic enters the
 * escape network mid-route with arbitrary dateline history, but every
 * dependency such a message can create is between channels on some
 * suffix of a from-the-start walk with the datelines the walk itself
 * set — on tori the dateline bits a message carries when it *enters*
 * a ring only lower its class at the wrap (see DESIGN.md Section 6k
 * for the per-topology argument).
 */

#ifndef TPNET_VERIFY_ESCAPE_CDG_HPP
#define TPNET_VERIFY_ESCAPE_CDG_HPP

#include <cstddef>
#include <string>

#include "sim/types.hpp"

namespace tpnet {

class Topology;

namespace verify {

/** Outcome of the static escape-CDG acyclicity check. */
struct EscapeCdgReport
{
    bool acyclic = true;     ///< no cycle and every walk terminated
    std::size_t channels = 0; ///< distinct (link, class) channels used
    std::size_t edges = 0;    ///< distinct dependency edges recorded
    std::size_t walks = 0;    ///< (src, dst) escape walks traced
    /** Human description of the first cycle / bad walk found, or "". */
    std::string diagnosis;
};

/**
 * Trace every (src, dst) escape walk on @p topo and check the induced
 * channel dependency graph for cycles. @p escape_vcs is the number of
 * escape classes configured (clamped per-hop by the topology's
 * escapeClass, exactly as Network does it).
 */
EscapeCdgReport checkEscapeCdg(const Topology &topo, int escape_vcs);

} // namespace verify
} // namespace tpnet

#endif // TPNET_VERIFY_ESCAPE_CDG_HPP
