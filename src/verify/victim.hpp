/**
 * @file
 * Victim selection for knot-triggered deadlock recovery.
 *
 * Given the reachable closure of a confirmed knot, pick the message to
 * sacrifice. Every policy is a deterministic function of (closure,
 * config, seed): candidates are canonicalized by id before any policy
 * runs, and the random policy draws from the network's dedicated
 * victim RNG stream (never the traffic RNG), so campaign results are
 * bit-identical for any --jobs and arming recovery cannot perturb a
 * run that forms no knots.
 */

#ifndef TPNET_VERIFY_VICTIM_HPP
#define TPNET_VERIFY_VICTIM_HPP

#include <vector>

#include "sim/config.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace tpnet {

class Network;

namespace verify {

/**
 * Pick the knot member to abort, or invalidMsg when no closure member
 * is eligible (all retired, terminal, or already being killed — the
 * knot is dissolving on its own).
 */
MsgId selectVictim(Network &net, const std::vector<MsgId> &closure,
                   VictimPolicy policy, Rng &rng);

} // namespace verify
} // namespace tpnet

#endif // TPNET_VERIFY_VICTIM_HPP
