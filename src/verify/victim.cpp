#include "verify/victim.hpp"

#include <algorithm>

#include "core/network.hpp"

namespace tpnet {
namespace verify {

namespace {

/** VC trios of @p msg's reserved path that it still owns. */
int
hopsHeld(Network &net, const Message &msg)
{
    int held = 0;
    for (const PathHop &hop : msg.path) {
        const VcState &trio =
            net.link(hop.link).vcs[static_cast<std::size_t>(hop.vc)];
        if (trio.owner == msg.id)
            ++held;
    }
    return held;
}

} // namespace

MsgId
selectVictim(Network &net, const std::vector<MsgId> &closure,
             VictimPolicy policy, Rng &rng)
{
    // Canonical candidate order: by id, independent of the closure's
    // discovery order, so every policy is reproducible from the spec.
    std::vector<MsgId> candidates;
    candidates.reserve(closure.size());
    for (MsgId id : closure) {
        const Message *msg = net.findMessage(id);
        // A Delivered message (tail ejected, awaiting its ack) is
        // excluded too: aborting and retransmitting it would deliver
        // twice.
        if (msg && !msg->terminal() && !msg->beingKilled &&
            msg->state != MsgState::Delivered)
            candidates.push_back(id);
    }
    if (candidates.empty())
        return invalidMsg;
    std::sort(candidates.begin(), candidates.end());

    switch (policy) {
      case VictimPolicy::YoungestMessage: {
        // Most recently created loses the least sunk work; ties break
        // toward the larger (later-issued) id.
        MsgId best = candidates.front();
        Cycle bestCreated = net.message(best).created;
        for (MsgId id : candidates) {
            const Cycle created = net.message(id).created;
            if (created > bestCreated ||
                (created == bestCreated && id > best)) {
                best = id;
                bestCreated = created;
            }
        }
        return best;
      }
      case VictimPolicy::FewestHopsHeld: {
        // Cheapest teardown: fewest owned trios; ties break toward the
        // larger id (the younger message, usually).
        MsgId best = candidates.front();
        int bestHeld = hopsHeld(net, net.message(best));
        for (MsgId id : candidates) {
            const int held = hopsHeld(net, net.message(id));
            if (held < bestHeld || (held == bestHeld && id > best)) {
                best = id;
                bestHeld = held;
            }
        }
        return best;
      }
      case VictimPolicy::RandomSeeded:
        return candidates[static_cast<std::size_t>(
            rng.below(candidates.size()))];
    }
    return invalidMsg;
}

} // namespace verify
} // namespace tpnet
