#include "verify/cwg.hpp"

#include <algorithm>
#include <sstream>

#include "core/network.hpp"
#include "sim/log.hpp"

namespace tpnet {
namespace verify {

const char *
cycleClassName(CycleClass c)
{
    switch (c) {
      case CycleClass::Benign:      return "benign-transient";
      case CycleClass::EscapeCycle: return "escape-cycle";
      case CycleClass::Knot:        return "knot";
      case CycleClass::Persistent:  return "persistent";
    }
    return "?";
}

CwgTracker::CwgTracker(Network &net, CwgConfig cfg)
    : net_(net), cfg_(cfg)
{
}

VcKey
CwgTracker::keyOf(LinkId link, int vc) const
{
    return static_cast<VcKey>(link) *
               static_cast<VcKey>(net_.vcCount()) +
           static_cast<VcKey>(vc);
}

// --- Hook protocol ---------------------------------------------------------

void
CwgTracker::beginEvaluation(const Message &msg)
{
    evalMsg_ = msg.id;
    scratch_.clear();
}

void
CwgTracker::noteCandidate(NodeId node, int port, int vc)
{
    if (evalMsg_ == invalidMsg)
        return;  // route() called outside an RCU evaluation (tests)
    scratch_.push_back(keyOf(net_.linkAt(node, port).id, vc));
}

void
CwgTracker::onBlocked(const Message &msg)
{
    if (msg.id != evalMsg_)
        return;
    evalMsg_ = invalidMsg;

    // Resolve owners at commit time; free or self-owned trios are not
    // waits (the latter would be a self-loop, never a deadlock edge).
    // The committed candidate count excludes only self-owned trios: a
    // candidate that is free at commit (or freed later) is an exit,
    // which the knot check reads off as waitCount < committed.
    std::sort(scratch_.begin(), scratch_.end());
    scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                   scratch_.end());
    std::vector<WaitRec> next;
    next.reserve(scratch_.size());
    std::size_t committed = 0;
    for (VcKey key : scratch_) {
        const LinkId link =
            static_cast<LinkId>(key / static_cast<VcKey>(net_.vcCount()));
        const int vc =
            static_cast<int>(key % static_cast<VcKey>(net_.vcCount()));
        const MsgId owner =
            net_.link(link).vcs[static_cast<std::size_t>(vc)].owner;
        if (owner == msg.id)
            continue;
        ++committed;
        if (owner == invalidMsg)
            continue;
        next.push_back({key, owner});
    }
    blocked_[msg.id] = committed;
    commitWaits(msg.id, std::move(next));
}

void
CwgTracker::onGranted(const Message &msg)
{
    if (msg.id == evalMsg_)
        evalMsg_ = invalidMsg;
    blocked_.erase(msg.id);
    clearWaits(msg.id);
}

void
CwgTracker::onRetreat(const Message &msg)
{
    if (msg.id == evalMsg_)
        evalMsg_ = invalidMsg;
    blocked_.erase(msg.id);
    clearWaits(msg.id);
}

void
CwgTracker::onVcReleased(LinkId link, int vc)
{
    const VcKey key = keyOf(link, vc);
    auto it = waiters_.find(key);
    if (it == waiters_.end())
        return;
    const std::vector<MsgId> waiting = std::move(it->second);
    waiters_.erase(it);
    for (MsgId id : waiting) {
        auto wit = waits_.find(id);
        if (wit == waits_.end())
            continue;
        auto &recs = wit->second;
        for (std::size_t i = 0; i < recs.size();) {
            if (recs[i].key == key) {
                removeEdge(id, recs[i].owner);
                recs[i] = recs.back();
                recs.pop_back();
            } else {
                ++i;
            }
        }
        if (recs.empty())
            waits_.erase(wit);
    }
}

void
CwgTracker::onMessageGone(MsgId id)
{
    if (id == evalMsg_)
        evalMsg_ = invalidMsg;
    blocked_.erase(id);
    clearWaits(id);
}

// --- Wait-set maintenance --------------------------------------------------

void
CwgTracker::commitWaits(MsgId id, std::vector<WaitRec> next)
{
    // Diff against the previous wait set so unchanged waits insert no
    // edges (the common case for a message blocked over many cycles).
    auto countOwners = [](const std::vector<WaitRec> &recs) {
        std::unordered_map<MsgId, int> c;
        for (const WaitRec &r : recs)
            ++c[r.owner];
        return c;
    };

    auto &prev = waits_[id];
    const auto before = countOwners(prev);
    const auto after = countOwners(next);

    // Reverse index: drop stale entries, add fresh ones.
    std::unordered_set<VcKey> prevKeys, nextKeys;
    for (const WaitRec &r : prev)
        prevKeys.insert(r.key);
    for (const WaitRec &r : next)
        nextKeys.insert(r.key);
    for (VcKey key : prevKeys) {
        if (nextKeys.count(key))
            continue;
        auto it = waiters_.find(key);
        if (it == waiters_.end())
            continue;
        auto &v = it->second;
        v.erase(std::remove(v.begin(), v.end(), id), v.end());
        if (v.empty())
            waiters_.erase(it);
    }
    for (VcKey key : nextKeys) {
        if (prevKeys.count(key))
            continue;
        waiters_[key].push_back(id);
    }

    prev = std::move(next);
    if (prev.empty())
        waits_.erase(id);

    for (const auto &[owner, n] : before) {
        auto it = after.find(owner);
        const int have = it == after.end() ? 0 : it->second;
        for (int i = have; i < n; ++i)
            removeEdge(id, owner);
    }
    for (const auto &[owner, n] : after) {
        auto it = before.find(owner);
        const int had = it == before.end() ? 0 : it->second;
        for (int i = had; i < n; ++i)
            addEdge(id, owner);
    }
}

void
CwgTracker::clearWaits(MsgId id)
{
    auto it = waits_.find(id);
    if (it == waits_.end())
        return;
    for (const WaitRec &r : it->second) {
        removeEdge(id, r.owner);
        auto wit = waiters_.find(r.key);
        if (wit == waiters_.end())
            continue;
        auto &v = wit->second;
        v.erase(std::remove(v.begin(), v.end(), id), v.end());
        if (v.empty())
            waiters_.erase(wit);
    }
    waits_.erase(it);
}

// --- Incremental cycle detection (Pearce–Kelly) ---------------------------

int
CwgTracker::ordOf(MsgId id)
{
    auto [it, fresh] = ord_.emplace(id, nextOrd_);
    if (fresh)
        ++nextOrd_;
    return it->second;
}

void
CwgTracker::addEdge(MsgId u, MsgId v)
{
    const EdgeKey e{u, v};
    const int n = ++edgeCount_[e];
    if (n > 1)
        return;  // multiplicity only; the graph edge already exists
    trueOut_[u].push_back(v);
    std::vector<MsgId> cycle;
    if (insertOrdered(u, v, &cycle)) {
        inDag_[e] = true;
        dagOut_[u].push_back(v);
        dagIn_[v].push_back(u);
    } else {
        // The edge closes a cycle: keep the DAG invariant by leaving it
        // out of the order (the true graph still holds it; the periodic
        // sweep tracks its persistence) and report the cycle now.
        inDag_[e] = false;
        reportCycle(cycle, false);
    }
}

void
CwgTracker::removeEdge(MsgId u, MsgId v)
{
    const EdgeKey e{u, v};
    auto it = edgeCount_.find(e);
    if (it == edgeCount_.end())
        return;
    if (--it->second > 0)
        return;
    edgeCount_.erase(it);
    auto tout = trueOut_.find(u);
    if (tout != trueOut_.end()) {
        auto &outs = tout->second;
        outs.erase(std::remove(outs.begin(), outs.end(), v), outs.end());
        if (outs.empty())
            trueOut_.erase(tout);
    }
    auto flag = inDag_.find(e);
    const bool dag = flag != inDag_.end() && flag->second;
    if (flag != inDag_.end())
        inDag_.erase(flag);
    if (dag) {
        auto &outs = dagOut_[u];
        outs.erase(std::remove(outs.begin(), outs.end(), v), outs.end());
        if (outs.empty())
            dagOut_.erase(u);
        auto &ins = dagIn_[v];
        ins.erase(std::remove(ins.begin(), ins.end(), u), ins.end());
        if (ins.empty())
            dagIn_.erase(v);
    }
}

bool
CwgTracker::insertOrdered(MsgId u, MsgId v, std::vector<MsgId> *cycle_out)
{
    const int ou = ordOf(u);
    const int ov = ordOf(v);
    if (ov > ou)
        return true;  // already consistent: O(1), the common case

    // Forward discovery from v, bounded by ord <= ord[u] — the affected
    // region. Reaching u closes a cycle.
    std::unordered_map<MsgId, MsgId> parent;
    std::vector<MsgId> deltaF;
    std::unordered_set<MsgId> seenF{v};
    std::vector<MsgId> stack{v};
    while (!stack.empty()) {
        const MsgId w = stack.back();
        stack.pop_back();
        deltaF.push_back(w);
        auto it = dagOut_.find(w);
        if (it == dagOut_.end())
            continue;
        for (MsgId x : it->second) {
            if (x == u) {
                // Cycle: u -> v -> ... -> w -> u.
                cycle_out->clear();
                for (MsgId y = w;; y = parent.at(y)) {
                    cycle_out->push_back(y);
                    if (y == v)
                        break;
                }
                std::reverse(cycle_out->begin(), cycle_out->end());
                cycle_out->push_back(u);
                // Rotate so the blocked inserter leads the report.
                std::rotate(cycle_out->begin(), cycle_out->end() - 1,
                            cycle_out->end());
                return false;
            }
            if (ord_[x] <= ou && seenF.insert(x).second) {
                parent[x] = w;
                stack.push_back(x);
            }
        }
    }

    // Backward discovery from u, bounded by ord >= ord[v].
    std::vector<MsgId> deltaB;
    std::unordered_set<MsgId> seenB{u};
    stack.push_back(u);
    while (!stack.empty()) {
        const MsgId w = stack.back();
        stack.pop_back();
        deltaB.push_back(w);
        auto it = dagIn_.find(w);
        if (it == dagIn_.end())
            continue;
        for (MsgId x : it->second) {
            if (ord_[x] >= ov && seenB.insert(x).second)
                stack.push_back(x);
        }
    }

    // Reorder the affected region only: the nodes of deltaB keep their
    // relative order, then the nodes of deltaF, packed into the sorted
    // pool of the positions both sets already occupy.
    auto byOrd = [this](MsgId a, MsgId b) { return ord_[a] < ord_[b]; };
    std::sort(deltaB.begin(), deltaB.end(), byOrd);
    std::sort(deltaF.begin(), deltaF.end(), byOrd);
    std::vector<int> pool;
    pool.reserve(deltaB.size() + deltaF.size());
    for (MsgId w : deltaB)
        pool.push_back(ord_[w]);
    for (MsgId w : deltaF)
        pool.push_back(ord_[w]);
    std::sort(pool.begin(), pool.end());
    std::size_t slot = 0;
    for (MsgId w : deltaB)
        ord_[w] = pool[slot++];
    for (MsgId w : deltaF)
        ord_[w] = pool[slot++];
    return true;
}

// --- Classification and diagnosis -----------------------------------------

std::vector<MsgId>
CwgTracker::closureOf(const std::vector<MsgId> &members) const
{
    std::vector<MsgId> closure;
    std::unordered_set<MsgId> seen;
    std::vector<MsgId> stack;
    for (MsgId id : members) {
        if (seen.insert(id).second)
            stack.push_back(id);
    }
    while (!stack.empty()) {
        const MsgId v = stack.back();
        stack.pop_back();
        closure.push_back(v);
        auto it = trueOut_.find(v);
        if (it == trueOut_.end())
            continue;
        for (MsgId w : it->second) {
            if (seen.insert(w).second)
                stack.push_back(w);
        }
    }
    return closure;
}

bool
CwgTracker::hasExit(MsgId id) const
{
    const Message *msg = net_.findMessage(id);
    if (!msg)
        return true;  // retired while its edges drain: progressing
    auto bit = blocked_.find(id);
    if (bit == blocked_.end())
        return true;  // owns trios but is not blocked: progressing
    if (bit->second == 0)
        return true;  // blocked with an unknown candidate set:
                      // conservatively assume a way out (every such
                      // block site is stall-limit-guarded)
    if (waitCount(id) < bit->second)
        return true;  // a committed candidate has been freed
    if (net_.canBacktrack(*msg))
        return true;
    if (net_.protocol().abortsOnStall(*msg))
        return true;
    return false;
}

CycleClass
CwgTracker::classify(const std::vector<MsgId> &members) const
{
    const int escapeVcs = net_.escapeVcCount();
    const int vcsPerLink = net_.vcCount();

    // Recovery mode frees the escape partition for fully adaptive use:
    // there is no acyclic escape order left to violate, so the
    // EscapeCycle verdict is meaningless and only the knot check
    // decides deadlock.
    if (!recovery_) {
        bool allEscapeCommitted = true;
        for (MsgId id : members) {
            // Theorem 3 demands that the *escape* channel dependency
            // graph stay acyclic. A member is committed to the escape
            // subnetwork only when every wait it holds is on an
            // escape-class trio; a cycle of such members breaks
            // Duato's acyclic escape order outright, no reachability
            // argument needed.
            auto wit = waits_.find(id);
            bool escapeCommitted = wit != waits_.end() &&
                                   !wit->second.empty();
            if (wit != waits_.end()) {
                for (const WaitRec &r : wit->second) {
                    const int vc = static_cast<int>(
                        r.key % static_cast<VcKey>(vcsPerLink));
                    if (vc >= escapeVcs)
                        escapeCommitted = false;
                }
            }
            if (!escapeCommitted) {
                allEscapeCommitted = false;
                break;
            }
        }
        if (allEscapeCommitted)
            return CycleClass::EscapeCycle;
    }

    // Knot check: the cycle is a true deadlock only if *nothing* in its
    // reachable closure can progress — every member's entire candidate
    // set is owned inside the closure (owners of committed candidates
    // are reachable by construction), and no closure member has an
    // exit. One exit anywhere dissolves the whole region eventually:
    // the benign OR-wait transient of Theorem 3.
    for (MsgId id : closureOf(members)) {
        if (hasExit(id))
            return CycleClass::Benign;
    }
    return CycleClass::Knot;
}

std::string
CwgTracker::diagnose(const std::vector<MsgId> &members,
                     CycleClass cls) const
{
    const int escapeVcs = net_.escapeVcCount();
    const int vcsPerLink = net_.vcCount();
    std::ostringstream os;
    os << "wait cycle (" << cycleClassName(cls) << ", "
       << members.size() << " members): ";

    const std::size_t n = members.size();
    for (std::size_t i = 0; i < n; ++i) {
        const MsgId id = members[i];
        const MsgId next = members[(i + 1) % n];
        if (i)
            os << "; ";
        os << "msg " << id;
        if (const Message *msg = net_.findMessage(id)) {
            const char *phase =
                msg->hdr.detour                      ? "detour"
                : msg->hdr.sr                        ? "SR"
                : msg->hdr.flow == FlowMode::PcsSetup ? "PCS"
                                                      : "WR";
            os << " [node " << msg->hdr.cur << ", phase " << phase
               << ", K=" << msg->srcK << "]";
        }
        bool found = false;
        auto wit = waits_.find(id);
        if (wit != waits_.end()) {
            for (const WaitRec &r : wit->second) {
                if (r.owner != next)
                    continue;
                const LinkId link = static_cast<LinkId>(
                    r.key / static_cast<VcKey>(vcsPerLink));
                const int vc = static_cast<int>(
                    r.key % static_cast<VcKey>(vcsPerLink));
                const VcState &trio =
                    net_.link(link).vcs[static_cast<std::size_t>(vc)];
                os << " waits on link " << link << " vc " << vc;
                if (vc < escapeVcs)
                    os << " (escape class " << vc << ")";
                else
                    os << " (adaptive)";
                os << " [kReg=" << trio.kReg << "] owned by msg "
                   << next;
                found = true;
                break;
            }
        }
        if (!found)
            os << " -> msg " << next;
    }
    if (cls == CycleClass::Knot)
        os << "; knot closure: " << closureOf(members).size()
           << " message(s), no exit";
    if (traceOffset_)
        os << "; trace offset " << traceOffset_();
    return os.str();
}

std::string
CwgTracker::describeWaits(MsgId id) const
{
    auto it = waits_.find(id);
    if (it == waits_.end() || it->second.empty())
        return "";
    const int escapeVcs = net_.escapeVcCount();
    const int vcsPerLink = net_.vcCount();
    std::ostringstream os;
    bool first = true;
    for (const WaitRec &r : it->second) {
        if (!first)
            os << ", ";
        first = false;
        const LinkId link =
            static_cast<LinkId>(r.key / static_cast<VcKey>(vcsPerLink));
        const int vc =
            static_cast<int>(r.key % static_cast<VcKey>(vcsPerLink));
        os << "link " << link << " vc " << vc
           << (vc < escapeVcs ? " (escape)" : " (adaptive)")
           << " owned by msg " << r.owner;
    }
    return os.str();
}

std::size_t
CwgTracker::waitCount(MsgId id) const
{
    auto it = waits_.find(id);
    return it == waits_.end() ? 0 : it->second.size();
}

std::size_t
CwgTracker::edgeCount() const
{
    std::size_t n = 0;
    for (const auto &[e, c] : edgeCount_)
        n += static_cast<std::size_t>(c);
    return n;
}

std::uint64_t
CwgTracker::memberHash(const std::vector<MsgId> &members)
{
    std::vector<MsgId> sorted = members;
    std::sort(sorted.begin(), sorted.end());
    std::uint64_t h = 14695981039346656037ull;
    for (MsgId id : sorted) {
        h ^= static_cast<std::uint64_t>(id);
        h *= 1099511628211ull;
    }
    return h;
}

void
CwgTracker::reportCycle(const std::vector<MsgId> &members, bool from_sweep)
{
    const std::uint64_t hash = memberHash(members);
    const CycleClass cls = classify(members);
    const std::string diag = diagnose(members, cls);
    lastDiagnosis_ = diag;

    // Recovery mode: a knot is the heal engine's problem, not (yet) a
    // violation. Queue it once per formation; while the heal is in
    // flight re-detections are suppressed, and knotHealed() re-arms
    // the hash so a re-formed knot is queued (and counted) again.
    if (recovery_ && cls == CycleClass::Knot) {
        if (healing_.insert(hash).second) {
            ++cyclesDetected_;
            PendingKnot pk;
            pk.cycle.cls = cls;
            pk.cycle.at = net_.now();
            pk.cycle.hash = hash;
            pk.cycle.members = members;
            pk.cycle.diagnosis = diag;
            pk.closure = closureOf(members);
            pendingKnots_.push_back(std::move(pk));
        }
        return;
    }

    if (!reported_.count(hash)) {
        ++cyclesDetected_;
        if (!isViolation(cls))
            ++benignDetected_;
    }

    if (isViolation(cls)) {
        if (!reported_[hash] && violations_.size() < cfg_.maxViolations) {
            CwgCycle c;
            c.cls = cls;
            c.at = net_.now();
            c.hash = hash;
            c.members = members;
            c.diagnosis = diag;
            violations_.push_back(std::move(c));
        }
        reported_[hash] = true;
        return;
    }

    // Benign: remember when we first saw it so the sweep can flag a
    // "transient" that refuses to resolve.
    reported_.emplace(hash, false);
    benignSeen_.emplace(hash, net_.now());
    (void)from_sweep;
}

// --- Recovery mode ---------------------------------------------------------

std::vector<PendingKnot>
CwgTracker::takePendingKnots()
{
    std::vector<PendingKnot> out;
    out.swap(pendingKnots_);
    return out;
}

void
CwgTracker::knotHealed(std::uint64_t hash)
{
    healing_.erase(hash);
}

void
CwgTracker::escalate(const PendingKnot &knot)
{
    const std::uint64_t hash = knot.cycle.hash;
    // The hash stays in healing_: once escalated, further re-detections
    // of the same knot are noise — the verdict is already terminal.
    healing_.insert(hash);
    if (!reported_[hash] && violations_.size() < cfg_.maxViolations) {
        CwgCycle c = knot.cycle;
        c.at = net_.now();
        c.diagnosis += "; heal budget exhausted (livelock escalation)";
        lastDiagnosis_ = c.diagnosis;
        violations_.push_back(std::move(c));
    }
    reported_[hash] = true;
}

void
CwgTracker::onCycleEnd(Cycle now)
{
    if (cfg_.sweepEvery == 0)
        return;
    if (now - lastSweep_ < cfg_.sweepEvery)
        return;
    lastSweep_ = now;
    sweep(now);
}

bool
CwgTracker::idleForSkip() const
{
    return waits_.empty() && edgeCount_.empty() && pendingKnots_.empty() &&
        healing_.empty() &&
        (cfg_.sweepEvery == 0 || benignSeen_.empty());
}

void
CwgTracker::skipTo(Cycle upto)
{
    if (cfg_.sweepEvery == 0)
        return;
    if (upto - lastSweep_ >= cfg_.sweepEvery)
        lastSweep_ += cfg_.sweepEvery * ((upto - lastSweep_) /
                                         cfg_.sweepEvery);
}

void
CwgTracker::sweep(Cycle now)
{
    // Tarjan over the *true* wait graph (rejected edges included): a
    // cycle whose wait set never changes inserts no new edges, so only
    // this sweep observes it persisting — and only this sweep can see
    // a benign cycle degenerate into a knot when an exit evaporates
    // without any edge churn (reportCycle below re-classifies every
    // SCC it finds, so a cycle first seen benign is promoted the
    // moment the knot condition starts to hold).
    static const std::vector<MsgId> kNoOuts;
    auto outsOf = [this](MsgId v) -> const std::vector<MsgId> & {
        auto it = trueOut_.find(v);
        return it == trueOut_.end() ? kNoOuts : it->second;
    };

    std::unordered_map<MsgId, int> index, low;
    std::unordered_map<MsgId, bool> onStack;
    std::vector<MsgId> tarjanStack;
    int counter = 0;
    std::vector<std::vector<MsgId>> sccs;

    // Iterative Tarjan (frame: node + next-child cursor).
    struct Frame
    {
        MsgId v;
        std::size_t child;
    };
    // Roots in sorted order: the map's iteration order depends on its
    // bucket history (and differs after a checkpoint restore), and the
    // root order decides which member an SCC is first entered from —
    // i.e. the reported cycle order. Sorting pins it.
    std::vector<MsgId> roots;
    roots.reserve(trueOut_.size());
    for (const auto &[root, outs] : trueOut_)
        roots.push_back(root);
    std::sort(roots.begin(), roots.end());
    for (const MsgId root : roots) {
        if (index.count(root))
            continue;
        std::vector<Frame> frames{{root, 0}};
        while (!frames.empty()) {
            Frame &f = frames.back();
            const MsgId v = f.v;
            if (f.child == 0) {
                index[v] = low[v] = counter++;
                tarjanStack.push_back(v);
                onStack[v] = true;
            }
            const auto &outs2 = outsOf(v);
            bool descended = false;
            while (f.child < outs2.size()) {
                const MsgId w = outs2[f.child++];
                if (!index.count(w)) {
                    frames.push_back({w, 0});
                    descended = true;
                    break;
                }
                if (onStack[w])
                    low[v] = std::min(low[v], index[w]);
            }
            if (descended)
                continue;
            if (low[v] == index[v]) {
                std::vector<MsgId> scc;
                for (;;) {
                    const MsgId w = tarjanStack.back();
                    tarjanStack.pop_back();
                    onStack[w] = false;
                    scc.push_back(w);
                    if (w == v)
                        break;
                }
                if (scc.size() > 1)
                    sccs.push_back(std::move(scc));
            }
            frames.pop_back();
            if (!frames.empty()) {
                Frame &pf = frames.back();
                low[pf.v] = std::min(low[pf.v], low[v]);
            }
        }
    }

    std::unordered_set<std::uint64_t> present;
    for (const std::vector<MsgId> &scc : sccs) {
        // Extract one cycle order inside the SCC: follow in-SCC edges
        // until a node repeats (every SCC node has one, size > 1).
        std::unordered_set<MsgId> inScc(scc.begin(), scc.end());
        std::vector<MsgId> walk{scc.front()};
        std::unordered_map<MsgId, std::size_t> pos{{scc.front(), 0}};
        std::vector<MsgId> cycle;
        for (;;) {
            const MsgId cur = walk.back();
            MsgId nxt = invalidMsg;
            for (MsgId w : outsOf(cur)) {
                if (inScc.count(w)) {
                    nxt = w;
                    break;
                }
            }
            if (nxt == invalidMsg)
                break;  // defensive: should not happen in an SCC
            auto it = pos.find(nxt);
            if (it != pos.end()) {
                cycle.assign(walk.begin() +
                                 static_cast<std::ptrdiff_t>(it->second),
                             walk.end());
                break;
            }
            pos[nxt] = walk.size();
            walk.push_back(nxt);
        }
        if (cycle.empty())
            continue;

        const std::uint64_t hash = memberHash(cycle);
        present.insert(hash);
        reportCycle(cycle, true);

        // A benign cycle that outlived the persistence bound is worth
        // a warning — suspicious longevity, but not a deadlock unless
        // the knot check above says so.
        auto seen = benignSeen_.find(hash);
        if (seen != benignSeen_.end() &&
            now - seen->second >= cfg_.persistBound &&
            !reported_[hash] && !warned_.count(hash) &&
            !healing_.count(hash)) {
            const std::string diag =
                diagnose(cycle, CycleClass::Persistent);
            lastDiagnosis_ = diag;
            if (warnings_.size() < cfg_.maxViolations) {
                CwgCycle c;
                c.cls = CycleClass::Persistent;
                c.at = now;
                c.hash = hash;
                c.members = cycle;
                c.diagnosis = diag;
                warnings_.push_back(std::move(c));
            }
            warned_.insert(hash);
        }
    }

    // Benign cycles that dissolved stop being tracked (and may be
    // re-reported if they ever re-form).
    for (auto it = benignSeen_.begin(); it != benignSeen_.end();) {
        if (!present.count(it->first)) {
            reported_.erase(it->first);
            warned_.erase(it->first);
            it = benignSeen_.erase(it);
        } else {
            ++it;
        }
    }
}

} // namespace verify
} // namespace tpnet
