/**
 * @file
 * Channel-wait-for-graph (CWG) deadlock analyzer — the online check of
 * the paper's Theorem 3 ("TP routing is deadlock-free with no extra
 * virtual channels beyond Duato's protocol").
 *
 * The tracker mirrors every RCU routing evaluation: while a protocol's
 * route() runs, each candidate virtual channel it could legally acquire
 * (adaptive and escape trios alike) is noted; if the decision is Block,
 * those notes commit as wait edges (blocked message -> owner of the
 * busy trio) and the committed candidate count is remembered. Edges
 * retract when the probe is granted a channel, retreats, or its circuit
 * is torn down, and when the waited trio is released.
 *
 * Cycle-freeness of the resulting message wait-for graph is maintained
 * with an incremental topological order (Pearce–Kelly): inserting an
 * edge u->v only does work when ord[v] <= ord[u], and then only over
 * the affected region between them. An edge that would close a cycle
 * is rejected from the order (keeping the DAG invariant) and the cycle
 * is extracted and classified on the spot. A low-frequency full SCC
 * sweep over the true wait graph re-classifies cycles that linger: a
 * cycle can degenerate into a knot without inserting a single new edge
 * (an exit evaporates when its holder blocks), so only the sweep can
 * observe that transition.
 *
 * Classification of a detected cycle:
 *  - every member waits solely on escape-class (dateline) trios: the
 *    escape network's acyclic dependency order is broken —
 *    EscapeCycle, a protocol violation (Theorem 3 / Duato);
 *  - the cycle's reachable closure over the wait graph contains no
 *    message with an exit — every member's *entire* candidate set is
 *    owned inside the closure, and no closure member can progress,
 *    backtrack, or abort: Knot, a true deadlock and a violation;
 *  - otherwise Benign — some closure member still has a way out, which
 *    is exactly the OR-wait transient Theorem 3 argues resolves
 *    itself;
 *  - a Benign cycle persisting beyond a bound: Persistent — a
 *    *warning* (suspicious longevity, e.g. livelock pressure), not a
 *    violation: the knot check, not wall-clock age, decides deadlock.
 *
 * An exit, precisely: a closure member M has an exit when (a) M is not
 * blocked at all (it owns trios and is progressing), (b) some
 * committed candidate of M has been released since M blocked (its live
 * wait count fell below the committed candidate count), (c) M can
 * backtrack, (d) M's protocol aborts the setup on a stall timeout, or
 * (e) M retired. A blocked message that reported no candidates is
 * conservatively treated as having an exit (its candidate set is
 * unknown; all such block sites are stall-limit-guarded).
 */

#ifndef TPNET_VERIFY_CWG_HPP
#define TPNET_VERIFY_CWG_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/types.hpp"

namespace tpnet {

class Network;
struct Message;
struct SnapshotAccess;

namespace verify {

/** Identifies one VC trio network-wide: link * vcsPerLink + vc. */
using VcKey = std::uint64_t;

/** Classification of a wait cycle. */
enum class CycleClass : std::uint8_t {
    Benign,      ///< some closure member still has an exit
    EscapeCycle, ///< crosses an escape (dateline) class: violation
    Knot,        ///< no exit anywhere in the reachable closure: deadlock
    Persistent,  ///< a Benign cycle that outlived the persistence bound
};

const char *cycleClassName(CycleClass c);

/** True for the classes that indicate a protocol violation. */
inline bool
isViolation(CycleClass c)
{
    return c == CycleClass::EscapeCycle || c == CycleClass::Knot;
}

/** One detected wait cycle, classified and diagnosed. */
struct CwgCycle
{
    CycleClass cls = CycleClass::Benign;
    Cycle at = 0;                 ///< simulation cycle of detection
    std::uint64_t hash = 0;       ///< order-independent member hash
    std::vector<MsgId> members;   ///< in cycle order
    /** Full human diagnosis: VCs, owners, K values, phases, trace offset. */
    std::string diagnosis;
};

/**
 * A confirmed knot queued for healing (recovery mode): the classified
 * cycle plus its full reachable closure, from which the victim layer
 * picks the message to sacrifice.
 */
struct PendingKnot
{
    CwgCycle cycle;
    std::vector<MsgId> closure;  ///< deterministic discovery order
};

/** Tunables of the analyzer. */
struct CwgConfig
{
    /// Cadence of the full SCC re-classification sweep (cycles;
    /// 0 disables).
    Cycle sweepEvery = 64;
    /// A Benign cycle still present after this many cycles is recorded
    /// as a Persistent *warning* (not a violation).
    Cycle persistBound = 4000;
    /// Stop recording after this many violations (the run is doomed).
    std::size_t maxViolations = 64;
};

/**
 * Live channel-wait-for-graph tracker for one Network.
 *
 * Strictly read-only with respect to the simulation: it never touches
 * network state or the RNG, so enabling it cannot perturb results
 * (golden-trace digests are identical with the tracker on or off).
 */
class CwgTracker
{
    friend struct ::tpnet::SnapshotAccess;

  public:
    explicit CwgTracker(Network &net, CwgConfig cfg = {});

    // --- Hook protocol (all called via null-gated Network hooks) -------
    /** An RCU evaluation of @p msg starts; reset the scratch notes. */
    void beginEvaluation(const Message &msg);

    /**
     * route() observed a legal-but-busy candidate trio on
     * (node, port, vc). The contract with the routing functions is
     * that by the time a Block decision is returned, *every* trio the
     * message could legally acquire has been noted — the committed set
     * is the message's full candidate set, which is what the knot
     * check reasons over.
     */
    void noteCandidate(NodeId node, int port, int vc);

    /** The evaluation ended in Block: commit the notes as wait edges. */
    void onBlocked(const Message &msg);

    /** The probe advanced (Forward/Eject): its wait edges retract. */
    void onGranted(const Message &msg);

    /** The probe retreats (Backtrack): its wait edges retract. */
    void onRetreat(const Message &msg);

    /** A trio was released: edges waiting on it retract. */
    void onVcReleased(LinkId link, int vc);

    /** A message was killed/reset/dropped/retired: forget its edges. */
    void onMessageGone(MsgId id);

    /** End-of-cycle housekeeping: periodic SCC/persistence sweep. */
    void onCycleEnd(Cycle now);

    // --- Event-engine cycle-skip support -------------------------------
    /**
     * True when skipping idle cycles cannot change anything the tracker
     * would observe or report: no wait edges, no pending knots or heals
     * in flight, and either sweeping is disabled or no benign cycle is
     * aging toward the persistence bound. (An idle network cannot grow
     * the graph, so sweeps of a skipped span are provably no-ops.)
     */
    bool idleForSkip() const;

    /**
     * Advance the sweep clock across a skipped idle span ending just
     * before @p upto, exactly as the per-cycle onCycleEnd(now) calls
     * would have: lastSweep_ lands on the last sweep boundary <= upto.
     * Only legal while idleForSkip() holds (the skipped sweeps are
     * no-ops by construction).
     */
    void skipTo(Cycle upto);

    // --- Results -------------------------------------------------------
    /** Cycles classified as protocol violations, in detection order. */
    const std::vector<CwgCycle> &violations() const { return violations_; }

    /**
     * Persistent-cycle warnings (benign cycles that outlived the
     * persistence bound without ever forming a knot), in detection
     * order. Advisory only — not violations.
     */
    const std::vector<CwgCycle> &warnings() const { return warnings_; }

    /** Every cycle ever detected (violations and benign alike). */
    std::uint64_t cyclesDetected() const { return cyclesDetected_; }
    std::uint64_t benignCycles() const { return benignDetected_; }

    /**
     * Diagnosis of the most recently observed cycle (violating or
     * benign), or "" — the chaos watchdog attaches this to its stall
     * reports.
     */
    const std::string &lastCycleDiagnosis() const { return lastDiagnosis_; }

    /**
     * One-line description of what @p id is currently waiting on
     * ("link 12 vc 3 (adaptive) owned by msg 7, ..."), or "" when it
     * holds no wait edges.
     */
    std::string describeWaits(MsgId id) const;

    /** Number of live wait records for @p id (tests). */
    std::size_t waitCount(MsgId id) const;

    /** Total wait edges in the graph (tests). */
    std::size_t edgeCount() const;

    /**
     * Cross-reference diagnoses to a trace stream: @p fn returns the
     * current event offset (e.g. TraceRecorder::size). Optional.
     */
    void
    setTraceOffsetProvider(std::function<std::size_t()> fn)
    {
        traceOffset_ = std::move(fn);
    }

    // --- Recovery mode (cfg.recoveryMode) ------------------------------
    /**
     * Arm detect-and-heal: a confirmed knot is queued as a PendingKnot
     * for the heal engine instead of being recorded as a violation,
     * and the EscapeCycle verdict is disabled (recovery mode frees the
     * escape partition for adaptive use, so no escape contract exists
     * to violate). Knots only become violations again via escalate().
     */
    void armRecovery() { recovery_ = true; }
    bool recoveryArmed() const { return recovery_; }

    /** Drain the knots detected since the last call (heal engine). */
    std::vector<PendingKnot> takePendingKnots();

    /**
     * The heal of knot @p hash completed (victim aborted and its trios
     * released) or was abandoned: if the same member set deadlocks
     * again, it is re-detected and re-queued as a fresh PendingKnot.
     */
    void knotHealed(std::uint64_t hash);

    /**
     * Livelock guard tripped: the same knot re-formed past the heal
     * budget. Records the knot as a real violation (once per hash) so
     * the watchdog/strict-mode machinery takes over.
     */
    void escalate(const PendingKnot &knot);

  private:
    struct WaitRec
    {
        VcKey key;
        MsgId owner;
    };

    /** Directed edge u->v: u waits on a trio owned by v. */
    struct EdgeKey
    {
        MsgId u;
        MsgId v;
        bool operator==(const EdgeKey &o) const
        {
            return u == o.u && v == o.v;
        }
    };
    struct EdgeKeyHash
    {
        std::size_t
        operator()(const EdgeKey &e) const
        {
            return std::hash<std::uint64_t>()(
                (static_cast<std::uint64_t>(e.u) << 32) ^
                static_cast<std::uint64_t>(e.v));
        }
    };

    VcKey keyOf(LinkId link, int vc) const;

    /** Replace @p id's wait set with @p next (diff-based edge update). */
    void commitWaits(MsgId id, std::vector<WaitRec> next);

    /** Remove every wait record (and edge) of @p id. */
    void clearWaits(MsgId id);

    void addEdge(MsgId u, MsgId v);
    void removeEdge(MsgId u, MsgId v);

    /**
     * Pearce–Kelly insertion of u->v into the maintained topological
     * order. @return false when the edge closes a cycle — the cycle
     * (in wait order, starting at u) is written to @p cycle_out and
     * the edge is left out of the DAG.
     */
    bool insertOrdered(MsgId u, MsgId v, std::vector<MsgId> *cycle_out);

    int ordOf(MsgId id);

    /** Classify, diagnose, and record one detected cycle. */
    void reportCycle(const std::vector<MsgId> &members, bool from_sweep);

    CycleClass classify(const std::vector<MsgId> &members) const;

    /**
     * Reachable closure of @p members over the true wait graph
     * (members included), in deterministic discovery order.
     */
    std::vector<MsgId> closureOf(const std::vector<MsgId> &members) const;

    /** True when closure member @p id can still make progress. */
    bool hasExit(MsgId id) const;

    std::string diagnose(const std::vector<MsgId> &members,
                         CycleClass cls) const;

    /** Full-graph SCC sweep: re-classification + persistence. */
    void sweep(Cycle now);

    static std::uint64_t memberHash(const std::vector<MsgId> &members);

    Network &net_;
    CwgConfig cfg_;

    // Scratch of the evaluation currently in flight.
    MsgId evalMsg_ = invalidMsg;
    std::vector<VcKey> scratch_;

    // Wait records per blocked message.
    std::unordered_map<MsgId, std::vector<WaitRec>> waits_;
    // Reverse index: trio -> messages with a wait record on it.
    std::unordered_map<VcKey, std::vector<MsgId>> waiters_;
    // Blocked message -> committed candidate count (distinct non-self
    // trios noted at the Block that created its wait set). A live wait
    // count below this means a candidate has been freed — an exit.
    std::unordered_map<MsgId, std::size_t> blocked_;

    // True wait-for graph: edge multiplicity per (u, v), plus a
    // deduplicated adjacency (one entry per distinct u->v) kept
    // incrementally so the knot closure walk and the SCC sweep never
    // rebuild it.
    std::unordered_map<EdgeKey, int, EdgeKeyHash> edgeCount_;
    std::unordered_map<MsgId, std::vector<MsgId>> trueOut_;
    // DAG adjacency of the maintained order (rejected edges excluded).
    std::unordered_map<MsgId, std::vector<MsgId>> dagOut_;
    std::unordered_map<MsgId, std::vector<MsgId>> dagIn_;
    std::unordered_map<EdgeKey, bool, EdgeKeyHash> inDag_;

    // Pearce–Kelly topological order.
    std::unordered_map<MsgId, int> ord_;
    int nextOrd_ = 0;

    // Persistence tracking of benign cycles (hash -> first seen).
    std::unordered_map<std::uint64_t, Cycle> benignSeen_;
    std::unordered_map<std::uint64_t, bool> reported_;
    std::unordered_set<std::uint64_t> warned_;

    // Recovery mode: knots currently being healed (suppresses
    // re-detection churn while the abort walk drains) and the queue
    // the heal engine consumes.
    bool recovery_ = false;
    std::unordered_set<std::uint64_t> healing_;
    std::vector<PendingKnot> pendingKnots_;

    std::vector<CwgCycle> violations_;
    std::vector<CwgCycle> warnings_;
    std::string lastDiagnosis_;
    std::uint64_t cyclesDetected_ = 0;
    std::uint64_t benignDetected_ = 0;
    Cycle lastSweep_ = 0;

    std::function<std::size_t()> traceOffset_;
};

} // namespace verify
} // namespace tpnet

#endif // TPNET_VERIFY_CWG_HPP
