#!/usr/bin/env bash
# Regenerate the golden-trace digests (tests/obs/goldens.txt).
#
# Run this after an intentional change to simulation behavior, trace
# hook coverage, or the binary trace format, then review the diff of
# goldens.txt like any other source change.
#
# Usage: scripts/update_goldens.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [ ! -d "$BUILD_DIR" ]; then
    echo "error: build directory '$BUILD_DIR' not found" >&2
    echo "       configure first: cmake -S . -B $BUILD_DIR" >&2
    exit 1
fi

cmake --build "$BUILD_DIR" --target tpnet_obs_tests -j "$(nproc)"

TPNET_UPDATE_GOLDENS=1 "$BUILD_DIR"/tests/tpnet_obs_tests \
    --gtest_filter='GoldenTrace.DigestsMatchGoldensAtJobs1And8'

echo
echo "new goldens:"
cat tests/obs/goldens.txt
git --no-pager diff --stat -- tests/obs/goldens.txt || true
