#!/usr/bin/env bash
# Reproduce the full evaluation: build, test, and regenerate every
# figure/ablation series plus the micro benchmarks.
#
# Usage:
#   scripts/reproduce.sh [results-dir]
#
# Environment:
#   TPNET_BENCH_REPS=5   enable the paper's 95%-CI replication rule
#   TPNET_BENCH_FAST=1   quarter-length smoke run
#   TPNET_JOBS=8         sweep worker threads (default: all cores;
#                        results are identical for every value)
set -euo pipefail

cd "$(dirname "$0")/.."
RESULTS="${1:-results}"
mkdir -p "$RESULTS"

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure 2>&1 | tee "$RESULTS/ctest.txt"

JOBS="${TPNET_JOBS:-$(nproc)}"

for bench in build/bench/fig* build/bench/ablation_* build/bench/ext_*; do
    name="$(basename "$bench")"
    echo "=== $name ==="
    case "$name" in
        # Sweep benches: parallel grid + machine-readable results.
        fig1[234567]*|ablation_hw_acks)
            "$bench" --jobs "$JOBS" --json "$RESULTS/$name.json" 2>&1 \
                | tee "$RESULTS/$name.txt" ;;
        *)
            "$bench" 2>&1 | tee "$RESULTS/$name.txt" ;;
    esac
done

./build/bench/micro_router --benchmark_min_time=0.2 \
    --json "$RESULTS/micro_router.json" 2>&1 \
    | tee "$RESULTS/micro_router.txt"

echo "results written to $RESULTS/"
