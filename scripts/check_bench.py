#!/usr/bin/env python3
"""Perf-regression gate for the bench-smoke CI job.

Compares a bench JSON result (the schema written by bench/report.hpp
via `--json`) against the committed baseline and fails on:

  * wall-clock regression beyond --wall-tol   (default +25%),
  * per-point latency regression beyond --latency-tol (default +25%),
  * per-point throughput drop beyond --latency-tol,
  * coverage loss (a baseline series/point missing from the current run).

Simulated latency/throughput are deterministic functions of the seed,
so across machines only genuine behavior changes move them; wall-clock
is the machine-dependent half of the gate.

Usage:
    check_bench.py BASELINE CURRENT [--wall-tol F] [--latency-tol F]
    check_bench.py BASELINE CURRENT --update   # rewrite the baseline

Exit status: 0 ok, 1 regression found, 2 usage/file error.
"""

import argparse
import json
import shutil
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def index_points(doc):
    """{(series label, x): point dict} for a report.hpp JSON."""
    out = {}
    for series in doc.get("series", []):
        for pt in series.get("points", []):
            out[(series["label"], pt["x"])] = pt
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--wall-tol", type=float, default=0.25,
                    help="allowed fractional wall-clock regression "
                         "(default 0.25 = +25%%)")
    ap.add_argument("--latency-tol", type=float, default=0.25,
                    help="allowed fractional latency regression / "
                         "throughput drop per point (default 0.25)")
    ap.add_argument("--update", action="store_true",
                    help="copy CURRENT over BASELINE and exit")
    args = ap.parse_args()

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"check_bench: baseline {args.baseline} updated from "
              f"{args.current}")
        return 0

    base = load(args.baseline)
    cur = load(args.current)
    failures = []

    if base.get("fast") != cur.get("fast"):
        failures.append(
            f"mode mismatch: baseline fast={base.get('fast')} vs "
            f"current fast={cur.get('fast')} — not comparable")

    bw, cw = base.get("wall_seconds"), cur.get("wall_seconds")
    if bw and cw:
        ratio = cw / bw
        line = (f"wall-clock {bw:.3f}s -> {cw:.3f}s "
                f"({(ratio - 1) * 100:+.1f}%)")
        if ratio > 1.0 + args.wall_tol:
            failures.append(f"{line} exceeds +{args.wall_tol * 100:.0f}%")
        else:
            print(f"check_bench: {line} ok")

    base_pts = index_points(base)
    cur_pts = index_points(cur)
    worst = 0.0
    for key, bpt in sorted(base_pts.items()):
        cpt = cur_pts.get(key)
        label = f"{key[0]} @ {key[1]:g}"
        if cpt is None:
            failures.append(f"point missing from current run: {label}")
            continue
        blat, clat = bpt.get("latency"), cpt.get("latency")
        if blat and clat:
            ratio = clat / blat
            worst = max(worst, ratio)
            if ratio > 1.0 + args.latency_tol:
                failures.append(
                    f"latency regression at {label}: "
                    f"{blat:.1f} -> {clat:.1f} cycles "
                    f"({(ratio - 1) * 100:+.1f}%)")
        bthr, cthr = bpt.get("throughput"), cpt.get("throughput")
        if bthr and cthr and cthr < bthr * (1.0 - args.latency_tol):
            failures.append(
                f"throughput drop at {label}: "
                f"{bthr:.4f} -> {cthr:.4f} flits/node/cycle")
    print(f"check_bench: {len(base_pts)} baseline points checked, "
          f"worst latency ratio {worst:.3f}")

    if failures:
        print(f"check_bench: FAIL ({len(failures)} regression(s)):",
              file=sys.stderr)
        for f in failures:
            print(f"  ! {f}", file=sys.stderr)
        return 1
    print("check_bench: PASS — no regression vs baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
