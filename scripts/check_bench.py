#!/usr/bin/env python3
"""Perf-regression gate for the bench-smoke CI job.

Compares a bench JSON result (the schema written by bench/report.hpp
via `--json`) against the committed baseline and fails on:

  * wall-clock regression beyond --wall-tol   (default +25%),
  * per-point latency regression beyond --latency-tol (default +25%),
  * per-point throughput drop beyond --latency-tol,
  * coverage loss (a baseline series/point missing from the current run),
  * an "engine_compare" entry (bench/idle_drain.cpp) below its own
    min_speedup, or one whose two engines were not bit-identical.

The engine gate is self-contained — every entry carries the speedup it
must reach — so it can also run without a baseline:

    check_bench.py --engine-gate idle_drain.json

Entries on the BASELINE side are never examined; only the current run's
engine_compare is gated.

Only keys present in the BASELINE are compared: new fields, new series,
or new points appearing on the current side (e.g. the per-VC "vc"
metrics object) never fail the gate, so the bench schema can grow
without simultaneously updating the baseline. A baseline point missing
a comparable key is skipped for that key, not an error.

Simulated latency/throughput are deterministic functions of the seed,
so across machines only genuine behavior changes move them; wall-clock
is the machine-dependent half of the gate.

Usage:
    check_bench.py BASELINE CURRENT [--wall-tol F] [--latency-tol F]
    check_bench.py BASELINE CURRENT --update   # rewrite the baseline
    check_bench.py --self-test                 # verify the gate itself

Exit status: 0 ok, 1 regression found, 2 usage/file error.
"""

import argparse
import copy
import json
import shutil
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def index_points(doc):
    """{(series label, x): point dict} for a report.hpp JSON."""
    out = {}
    for series in doc.get("series", []):
        for pt in series.get("points", []):
            out[(series["label"], pt["x"])] = pt
    return out


def engine_failures(cur, out=sys.stdout):
    """Gate the current run's engine_compare entries (idle_drain)."""
    failures = []
    for entry in cur.get("engine_compare", []):
        label = entry.get("label", "?")
        if entry.get("identical") is False:
            failures.append(
                f"engine divergence at {label}: event-engine and "
                f"time-stepped results are not bit-identical")
        speedup = entry.get("speedup")
        need = entry.get("min_speedup")
        if speedup is None or need is None:
            continue
        line = (f"engine-compare {label}: {speedup:.2f}x "
                f"(required >= {need:.2f}x)")
        if speedup < need:
            failures.append(f"{line} — event engine too slow")
        else:
            print(f"check_bench: {line} ok", file=out)
    return failures


def compare(base, cur, wall_tol, latency_tol, out=sys.stdout):
    """All regressions of `cur` vs `base` as a list of strings."""
    failures = engine_failures(cur, out=out)

    if base.get("fast") != cur.get("fast"):
        failures.append(
            f"mode mismatch: baseline fast={base.get('fast')} vs "
            f"current fast={cur.get('fast')} — not comparable")

    bw, cw = base.get("wall_seconds"), cur.get("wall_seconds")
    if bw and cw:
        ratio = cw / bw
        line = (f"wall-clock {bw:.3f}s -> {cw:.3f}s "
                f"({(ratio - 1) * 100:+.1f}%)")
        if ratio > 1.0 + wall_tol:
            failures.append(f"{line} exceeds +{wall_tol * 100:.0f}%")
        else:
            print(f"check_bench: {line} ok", file=out)

    base_pts = index_points(base)
    cur_pts = index_points(cur)
    worst = 0.0
    for key, bpt in sorted(base_pts.items()):
        cpt = cur_pts.get(key)
        label = f"{key[0]} @ {key[1]:g}"
        if cpt is None:
            failures.append(f"point missing from current run: {label}")
            continue
        blat, clat = bpt.get("latency"), cpt.get("latency")
        if blat and clat:
            ratio = clat / blat
            worst = max(worst, ratio)
            if ratio > 1.0 + latency_tol:
                failures.append(
                    f"latency regression at {label}: "
                    f"{blat:.1f} -> {clat:.1f} cycles "
                    f"({(ratio - 1) * 100:+.1f}%)")
        bthr, cthr = bpt.get("throughput"), cpt.get("throughput")
        if bthr and cthr and cthr < bthr * (1.0 - latency_tol):
            failures.append(
                f"throughput drop at {label}: "
                f"{bthr:.4f} -> {cthr:.4f} flits/node/cycle")
    print(f"check_bench: {len(base_pts)} baseline points checked, "
          f"worst latency ratio {worst:.3f}", file=out)
    return failures


def self_test():
    """Exercise the gate against synthetic fixtures. 0 on success."""
    doc = {
        "benchmark": "self-test",
        "fast": True,
        "wall_seconds": 10.0,
        "series": [
            {"label": "TP", "x_name": "offered", "points": [
                {"x": 0.05, "throughput": 0.05, "latency": 100.0},
                {"x": 0.10, "throughput": 0.10, "latency": 150.0},
            ]},
        ],
    }

    cases = []  # (name, baseline, current, expected failure count)

    cases.append(("identical", doc, doc, 0))

    # New current-side content must never fail: extra per-point keys
    # (the "vc" metrics object and the recovery-mode stats object), an
    # extra point, an extra series.
    grown = copy.deepcopy(doc)
    for pt in grown["series"][0]["points"]:
        pt["vc"] = {"samples": 9, "occupancy": 0.1,
                    "per_vc_occupancy": [0.1, 0.2]}
        pt["recovery"] = {"knots": 2, "victims": 2,
                          "heal_retransmits": 2, "heal_escalations": 0,
                          "heal_latency_mean": 40.0,
                          "heal_latency_p95": 96.0}
        pt["p95"] = 200.0
    grown["series"][0]["points"].append(
        {"x": 0.20, "throughput": 0.2, "latency": 300.0})
    grown["series"].append(
        {"label": "TP+recovery", "x_name": "offered", "points": [
            {"x": 0.05, "throughput": 0.05, "latency": 90.0,
             "recovery": {"knots": 0, "victims": 0}}]})
    cases.append(("current grows keys/points/series", doc, grown, 0))

    # A baseline that itself carries a recovery series compares only
    # the shared numeric keys: recovery sub-objects are never diffed,
    # so recovery-stats churn cannot trip the perf gate.
    rec_base = copy.deepcopy(grown)
    rec_cur = copy.deepcopy(grown)
    rec_cur["series"][1]["points"][0]["recovery"] = {
        "knots": 7, "victims": 7, "heal_retransmits": 9,
        "heal_escalations": 1, "heal_latency_mean": 123.0}
    cases.append(("recovery stats churn is not a regression",
                  rec_base, rec_cur, 0))

    # Workload-library keys (bench/report.hpp): per-point rejection and
    # fallback counters, the degenerate marker, the per-class stats
    # array, and the closed-loop object are all new-schema content the
    # gate must treat as inert — in both directions.
    wl = copy.deepcopy(doc)
    for pt in wl["series"][0]["points"]:
        pt["rejected"] = 17
        pt["uniform_fallbacks"] = 3
        pt["classes"] = [
            {"generated": 100, "delivered": 98, "dropped": 2,
             "latency_mean": 120.0},
            {"generated": 40, "delivered": 40, "dropped": 0,
             "latency_mean": 95.0}]
        pt["closed_loop"] = {
            "replies_generated": 40, "replies_delivered": 39,
            "replies_abandoned": 1, "e2e_latency_mean": 260.0,
            "e2e_count": 38}
    wl["series"][0]["points"][0]["degenerate"] = True
    cases.append(("workload keys on the current side are inert",
                  doc, wl, 0))
    wl_churn = copy.deepcopy(wl)
    for pt in wl_churn["series"][0]["points"]:
        pt["rejected"] = 9999
        pt["classes"][0]["latency_mean"] = 5000.0
        pt["closed_loop"]["e2e_latency_mean"] = 5000.0
        pt.pop("degenerate", None)
    cases.append(("workload counter churn is not a regression",
                  wl, wl_churn, 0))

    # Topology annotations (the --topology axis): a current run that
    # labels its series/points with topology geometry must compare
    # clean against a pre-topology baseline, and topology-only churn
    # (renamed geometry, extra dragonfly/express keys) is inert.
    topo = copy.deepcopy(doc)
    topo["topology"] = "torus"
    for s in topo["series"]:
        s["topology"] = "torus"
        s["geometry"] = {"k": 16, "n": 2, "wrap": True}
    for pt in topo["series"][0]["points"]:
        pt["topology"] = "torus"
    cases.append(("topology keys on the current side are inert",
                  doc, topo, 0))
    topo_churn = copy.deepcopy(topo)
    topo_churn["topology"] = "dragonfly"
    for s in topo_churn["series"]:
        s["topology"] = "dragonfly"
        s["geometry"] = {"df_routers": 8, "df_global": 2,
                         "express_gap": 4}
    cases.append(("topology metadata churn is not a regression",
                  topo, topo_churn, 0))
    cases.append(("topology keys in the baseline are never diffed",
                  topo, doc, 0))

    # A baseline point lacking a comparable key is skipped, not fatal.
    sparse = copy.deepcopy(doc)
    for pt in sparse["series"][0]["points"]:
        del pt["latency"]
    del sparse["wall_seconds"]
    cases.append(("baseline missing keys", sparse, doc, 0))

    slow = copy.deepcopy(doc)
    slow["series"][0]["points"][0]["latency"] = 200.0
    cases.append(("latency regression", doc, slow, 1))

    weak = copy.deepcopy(doc)
    weak["series"][0]["points"][1]["throughput"] = 0.01
    cases.append(("throughput drop", doc, weak, 1))

    shrunk = copy.deepcopy(doc)
    shrunk["series"][0]["points"].pop()
    cases.append(("point missing from current", doc, shrunk, 1))

    crawl = copy.deepcopy(doc)
    crawl["wall_seconds"] = 100.0
    cases.append(("wall-clock regression", doc, crawl, 1))

    mixed = copy.deepcopy(doc)
    mixed["fast"] = False
    cases.append(("fast-mode mismatch", doc, mixed, 1))

    # Sharded-run metadata riding along in a result JSON is inert for
    # the perf gate: shard framing, manifest/cache bookkeeping, and
    # checkpoint digests are strings/objects, never compared values.
    shard_meta = copy.deepcopy(doc)
    shard_meta["shard"] = {"index": 0, "count": 4, "total": 80,
                           "key": "a0b1c2d3e4f50617",
                           "result_digest": "0123456789abcdef"}
    shard_meta["manifest"] = {"tool": "tpnet_verify", "count": 4}
    shard_meta["cache"] = {"hit": True, "dir": "ck-cache"}
    for pt in shard_meta["series"][0]["points"]:
        pt["tail_digest"] = "feedfacecafebeef"
        pt["state_digest"] = "00ddba11deadbea7"
    cases.append(("shard/manifest/cache/digest keys are inert",
                  doc, shard_meta, 0))
    cases.append(("shard keys in the baseline are never diffed",
                  shard_meta, doc, 0))

    # The engine gate (bench/idle_drain.cpp): every entry carries its
    # own required speedup, and both the idle-heavy win and the
    # saturated no-regression bound are expressed the same way.
    eng_ok = copy.deepcopy(doc)
    eng_ok["engine_compare"] = [
        {"label": "idle/zero-load-window", "wall_on": 0.1,
         "wall_off": 1.0, "speedup": 10.0, "min_speedup": 2.0,
         "identical": True},
        {"label": "saturated/load-0.30", "wall_on": 1.0,
         "wall_off": 0.95, "speedup": 0.95, "min_speedup": 0.8,
         "identical": True},
    ]
    cases.append(("engine compare within bounds", doc, eng_ok, 0))

    eng_slow = copy.deepcopy(eng_ok)
    eng_slow["engine_compare"][0]["speedup"] = 1.4
    cases.append(("idle-heavy speedup below 2x", doc, eng_slow, 1))

    eng_sat = copy.deepcopy(eng_ok)
    eng_sat["engine_compare"][1]["speedup"] = 0.7
    cases.append(("saturated regression beyond 25%", doc, eng_sat, 1))

    eng_div = copy.deepcopy(eng_ok)
    eng_div["engine_compare"][0]["identical"] = False
    cases.append(("engine divergence is fatal", doc, eng_div, 1))

    # engine_compare on the baseline side is metadata, never diffed.
    cases.append(("baseline engine_compare is inert", eng_ok, doc, 0))

    # The restore-overhead gate: a checkpoint-armed run must stay
    # within +5% wall of the unarmed baseline (--wall-tol 0.05).
    ok_restore = copy.deepcopy(doc)
    ok_restore["wall_seconds"] = 10.4
    cases.append(("restore overhead +4% passes the 5% wall gate",
                  doc, ok_restore, 0, 0.05))
    slow_restore = copy.deepcopy(doc)
    slow_restore["wall_seconds"] = 10.8
    cases.append(("restore overhead +8% trips the 5% wall gate",
                  doc, slow_restore, 1, 0.05))

    bad = 0
    for case in cases:
        name, base, cur, want = case[:4]
        wall_tol = case[4] if len(case) > 4 else 0.25
        failures = compare(base, cur, wall_tol=wall_tol,
                           latency_tol=0.25,
                           out=open("/dev/null", "w"))
        status = "ok" if len(failures) == want else "FAIL"
        bad += status == "FAIL"
        print(f"self-test: {name}: expected {want} failure(s), "
              f"got {len(failures)} — {status}")
        if status == "FAIL":
            for f in failures:
                print(f"    ! {f}", file=sys.stderr)

    if bad:
        print(f"check_bench --self-test: {bad} case(s) FAILED",
              file=sys.stderr)
        return 1
    print(f"check_bench --self-test: all {len(cases)} cases passed")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("current", nargs="?")
    ap.add_argument("--wall-tol", type=float, default=0.25,
                    help="allowed fractional wall-clock regression "
                         "(default 0.25 = +25%%)")
    ap.add_argument("--latency-tol", type=float, default=0.25,
                    help="allowed fractional latency regression / "
                         "throughput drop per point (default 0.25)")
    ap.add_argument("--update", action="store_true",
                    help="copy CURRENT over BASELINE and exit")
    ap.add_argument("--self-test", action="store_true",
                    help="run the gate against synthetic fixtures")
    ap.add_argument("--engine-gate", action="store_true",
                    help="gate only the engine_compare entries of a "
                         "single result file (no baseline needed)")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if args.engine_gate:
        path = args.current or args.baseline
        if not path:
            ap.error("--engine-gate needs one result file")
        doc = load(path)
        if not doc.get("engine_compare"):
            print(f"check_bench: no engine_compare entries in {path}",
                  file=sys.stderr)
            return 2
        failures = engine_failures(doc)
        if failures:
            print(f"check_bench: FAIL ({len(failures)} engine "
                  f"regression(s)):", file=sys.stderr)
            for f in failures:
                print(f"  ! {f}", file=sys.stderr)
            return 1
        print("check_bench: PASS — engine gate satisfied")
        return 0
    if not args.baseline or not args.current:
        ap.error("baseline and current are required "
                 "(unless --self-test)")

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"check_bench: baseline {args.baseline} updated from "
              f"{args.current}")
        return 0

    failures = compare(load(args.baseline), load(args.current),
                       args.wall_tol, args.latency_tol)
    if failures:
        print(f"check_bench: FAIL ({len(failures)} regression(s)):",
              file=sys.stderr)
        for f in failures:
            print(f"  ! {f}", file=sys.stderr)
        return 1
    print("check_bench: PASS — no regression vs baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
